"""The end-to-end RIM estimator (§4.4, "Putting It All Together").

``Rim.process`` consumes a :class:`~repro.channel.sampler.CsiTrace` and
produces a :class:`RimResult` with per-sample speed, heading, cumulative
distance, detected in-place rotations, and a dead-reckoned trajectory.

Pipeline:

1. sanitize the CSI (linear phase, §3.2);
2. detect movement from the self-TRRS of one antenna (§4.1);
3. pre-detect candidate pair groups with a cheap strided screen (§4.3);
4. build (group-averaged, §4.2) alignment matrices for the candidates and
   track their peaks with dynamic programming (§4.2);
5. post-check the tracked paths and select the aligned group per sample;
6. if the array is circular, check the ring-adjacent pairs for concurrent
   alignment ⇒ in-place rotation (§4.4(3));
7. turn lags into speed/heading/rotation and integrate.

Headings are reported in the *device* (array) frame: RIM is an inside-out
relative tracker, so world-frame output needs the initial array orientation
— exactly like the indoor-tracking deployments of §6.3.3.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.arrays.pairs import AntennaPair, adjacent_ring_pairs, parallel_groups
from repro.channel.sampler import CsiTrace
from repro.core.alignment import average_matrices
from repro.core.config import RimConfig
from repro.core.motion import (
    MotionEstimate,
    RotationEvent,
    integrate_rotation,
    smooth_speed,
    speed_from_lags,
)
from repro.core.movement import MovementResult, detect_movement, self_trrs_indicator
from repro.core.pairs import (
    GroupTrack,
    path_quality,
    peak_prominence_score,
    post_check,
    select_group_per_sample,
)
from repro.core.sanitize import sanitize_trace
from repro.core.trrs import normalize_csi
from repro.perf import get_backend
from repro.robustness.guard import guard_trace
from repro.robustness.health import HealthReport, apply_degradation, build_health

logger = logging.getLogger(__name__)


@dataclass
class RimResult:
    """Everything RIM estimated from one CSI trace."""

    motion: MotionEstimate
    movement: MovementResult
    group_tracks: List[GroupTrack]
    ring_tracks: List[GroupTrack] = field(default_factory=list)
    health: Optional[HealthReport] = None
    stats: Optional[Dict[str, Any]] = None

    @property
    def total_distance(self) -> float:
        """Integrated moving distance, meters (§4.4(1))."""
        return self.motion.total_distance

    @property
    def total_rotation(self) -> float:
        """Net detected in-place rotation, radians (§4.4(3))."""
        return self.motion.total_rotation

    def cumulative_distance(self) -> np.ndarray:
        return self.motion.cumulative_distance()

    def headings(self) -> np.ndarray:
        """(T,) device-frame heading, radians (NaN where unresolved)."""
        return self.motion.heading

    def trajectory(self, start=(0.0, 0.0), orientation: float = 0.0) -> np.ndarray:
        """Dead-reckoned world positions given the initial array orientation."""
        shifted = MotionEstimate(
            times=self.motion.times,
            moving=self.motion.moving,
            speed=self.motion.speed,
            heading=self.motion.heading + orientation,
            group_choice=self.motion.group_choice,
            rotations=self.motion.rotations,
        )
        return shifted.positions(start=start)


class Rim:
    """RF-based inertial measurement from CSI traces."""

    def __init__(self, config: Optional[RimConfig] = None):
        self.config = config or RimConfig()
        # Which TRRS kernel implementation serves the alignment hot path;
        # resolved once at construction (config > $RIM_KERNEL > default).
        self._kernel = get_backend(self.config)

    @property
    def kernel_backend(self) -> str:
        """Name of the resolved kernel backend (see ``repro.perf``)."""
        return self._kernel.name

    def process(
        self,
        trace: CsiTrace,
        *,
        stream_cache=None,
        stream_offset: int = 0,
        presanitized: Optional[np.ndarray] = None,
    ) -> RimResult:
        """Run the full RIM pipeline on a CSI trace.

        Input first passes the robustness guard (``config.guard_policy``):
        malformed packets are repaired or dropped, dead RX chains are
        detected and their pairs masked out of the alignment vote, and a
        :class:`~repro.robustness.health.HealthReport` documenting all of
        it is attached to the result.

        When instrumentation is on (:func:`repro.obs.enable`) the result
        additionally carries ``stats`` — per-stage wall-time spans and the
        root span metadata — mirroring how ``health`` flows.  Tracing is
        observational only: it never changes an output bit.

        Args:
            trace: The CSI trace to process.
            stream_cache: Cross-block TRRS row cache managed by
                :class:`~repro.core.streaming.StreamingRim`
                (:mod:`repro.perf.streamcache`); None for batch use.
            stream_offset: Global sample index of ``trace``'s first row
                within the stream the cache is keyed on.
            presanitized: Ingest-fused sanitize: the caller's per-sample
                sanitized copy of ``trace.data`` (same shape/dtype).  Used
                instead of the in-pipeline ``sanitize_trace`` pass when the
                stream-safety gate holds (no guard repairs this call, no
                loss interpolation pending — the same condition that
                validates the cross-block TRRS cache); silently ignored
                otherwise, so correctness never depends on it.
        """
        span_cm = obs.span(
            "rim.process", n_samples=trace.n_samples, n_rx=trace.n_rx
        )
        root = span_cm.__enter__()
        try:
            result = self._run_pipeline(
                trace,
                stream_cache=stream_cache,
                stream_offset=stream_offset,
                presanitized=presanitized,
            )
        finally:
            span_cm.__exit__(None, None, None)
        if root is not None:
            obs.add("rim.traces_processed", 1)
            obs.add("rim.samples_processed", trace.n_samples)
            result.stats = obs.span_stats(root)
        return result

    def _run_pipeline(
        self,
        trace: CsiTrace,
        stream_cache=None,
        stream_offset: int = 0,
        presanitized: Optional[np.ndarray] = None,
    ) -> RimResult:
        cfg = self.config
        guard_report = None
        if cfg.guard_policy != "off":
            with obs.span("rim.guard", policy=cfg.guard_policy):
                trace, guard_report = guard_trace(
                    trace,
                    policy=cfg.guard_policy,
                    min_chain_liveness=cfg.guard_min_liveness,
                    max_clock_drift=cfg.guard_max_drift,
                )
            repairs = guard_report.repairs()
            if repairs or guard_report.dead_chains:
                logger.info(
                    "input guard: repairs=%s dead_chains=%s",
                    repairs,
                    guard_report.dead_chains,
                )
        dead = set(guard_report.dead_chains) if guard_report else set()

        data = trace.data
        # One safety evaluation governs both per-sample reuse mechanisms:
        # the ingest-fused sanitized view and the cross-block TRRS cache.
        # Both demand that this call's samples are bit-identical to what a
        # per-sample pass over the raw stream would have seen.
        stream_safe = (
            self._stream_cache_safe(data, guard_report)
            if (stream_cache is not None or presanitized is not None)
            else False
        )
        fused = (
            presanitized is not None
            and cfg.sanitize
            and stream_safe
            and presanitized.shape == data.shape
        )
        with obs.span(
            "rim.sanitize", shape=data.shape, sanitize=cfg.sanitize, fused=fused
        ):
            if fused:
                # Every sample was sanitized exactly once at ingest (and
                # counted there in ``sanitize.samples``); the block pass
                # only normalizes.
                data = presanitized
            else:
                if cfg.interpolate_loss and cfg.interpolation_max_gap > 0:
                    from repro.channel.interpolation import interpolate_lost_packets

                    data = interpolate_lost_packets(
                        data, max_gap=cfg.interpolation_max_gap
                    )
                if cfg.sanitize:
                    data = sanitize_trace(data)
                    obs.add("sanitize.samples", data.shape[0])
            norm = normalize_csi(data)
        fs = trace.sampling_rate

        # Per-trace kernel store; in streaming it is seeded with the
        # previous block's TRRS rows when the retained samples are
        # guaranteed unchanged (see _stream_cache_safe).
        store = self._kernel.make_store(norm, cfg.max_lag)
        cache_ok = False
        if stream_cache is not None:
            cache_ok = stream_safe
            if cache_ok:
                seeded_before = stream_cache.seeded_cells
                self._kernel.seed_store(store, stream_cache, stream_offset)
                obs.add(
                    "stream.cache_seeded_cells",
                    stream_cache.seeded_cells - seeded_before,
                )
            else:
                stream_cache.clear()

        groups = parallel_groups(trace.array)
        groups = [
            [p for p in g if p.i not in dead and p.j not in dead] for g in groups
        ]
        groups = [g for g in groups if g]
        usable_pairs = sum(len(g) for g in groups)

        with obs.span("rim.movement_detect", shape=data.shape):
            movement = self._detect_movement(data, fs, dead)
        moving = movement.moving

        if not moving.any() or not groups:
            logger.debug(
                "pipeline short-circuit: moving=%s usable_groups=%d",
                bool(moving.any()),
                len(groups),
            )
            if stream_cache is not None:
                # No matrices were computed this block, so there is nothing
                # fresh to carry forward; stale rows must not outlive it.
                stream_cache.clear()
            motion = MotionEstimate(
                times=trace.times,
                moving=moving,
                speed=np.zeros(trace.n_samples),
                heading=np.full(trace.n_samples, np.nan),
                group_choice=np.full(trace.n_samples, -1, dtype=np.int64),
            )
            health = build_health(
                n_samples=trace.n_samples,
                n_chains=trace.n_rx,
                guard_report=guard_report,
                usable_pairs=usable_pairs,
                usable_groups=len(groups),
            )
            motion = apply_degradation(motion, health, cfg.health_min_pairs)
            return RimResult(
                motion=motion, movement=movement, group_tracks=[], health=health
            )

        with obs.span("rim.pre_screen", n_groups=len(groups)):
            candidates = self._pre_detect(store, groups, moving, fs)
        with obs.span("rim.track_groups", n_candidates=len(candidates)):
            tracks = self._track_groups(store, candidates, fs)
            tracks = self._post_filter(tracks, moving)

        with obs.span("rim.rotation_detect", circular=trace.array.circular):
            ring_tracks, rotations = self._detect_rotation(
                trace, store, moving, fs, dead
            )

        if stream_cache is not None and cache_ok:
            self._kernel.export_store(store, stream_cache, stream_offset)

        with obs.span("rim.integrate", n_tracks=len(tracks)):
            motion = self._reckon(
                trace,
                tracks,
                moving,
                rotations,
                fs,
                blind=self._blind_mask(data, dead),
            )
        health = build_health(
            n_samples=trace.n_samples,
            n_chains=trace.n_rx,
            guard_report=guard_report,
            usable_pairs=usable_pairs,
            usable_groups=len(groups),
            tracks=tracks,
            moving=moving,
        )
        motion = apply_degradation(motion, health, cfg.health_min_pairs)
        logger.debug(
            "pipeline done: %d samples, %d tracks, %d rotation events, "
            "distance %.3f m",
            trace.n_samples,
            len(tracks),
            len(rotations),
            motion.total_distance,
        )
        return RimResult(
            motion=motion,
            movement=movement,
            group_tracks=tracks,
            ring_tracks=ring_tracks,
            health=health,
        )

    # -- pipeline stages -------------------------------------------------

    def _blind_mask(self, data: np.ndarray, dead: set) -> np.ndarray:
        """(T,) samples whose virtual-antenna window is starved of data.

        A loss burst longer than the interpolator's reach leaves an all-NaN
        region; the DP tracker free-runs through it and can latch onto
        arbitrary small lags, exploding the implied speed.  The same holds
        for a short clean island wedged between two such bursts — its own
        packets are fine but the TRRS window around it is empty.  Samples
        whose surrounding window holds too few finite packets are declared
        blind; speed/heading there fall back to hold-last-good.
        """
        t = data.shape[0]
        live = [a for a in range(data.shape[1]) if a not in dead]
        if not live:
            return np.ones(t, dtype=bool)
        lost = np.isnan(data.real).any(axis=(2, 3))
        usable = (~lost[:, live]).any(axis=1).astype(np.float64)
        if usable.all():
            return np.zeros(t, dtype=bool)
        window = max(5, self.config.virtual_window) | 1
        coverage = np.convolve(usable, np.ones(window) / window, mode="same")
        return coverage < 0.3

    def _detect_movement(
        self, data: np.ndarray, fs: float, dead: Optional[set] = None
    ) -> MovementResult:
        cfg = self.config
        # An all-NaN (dead) reference chain would blind movement detection;
        # use the first live one.  With no live chain at all there is no
        # evidence of movement — report still and let degradation flag it.
        reference = next(
            (a for a in range(data.shape[1]) if not dead or a not in dead), None
        )
        if reference is None:
            indicator = np.full(data.shape[0], np.nan)
            return MovementResult(
                indicator=indicator,
                moving=np.zeros(data.shape[0], dtype=bool),
                threshold=cfg.movement_threshold,
            )
        lag = max(1, int(round(cfg.movement_lag_seconds * fs)))
        indicator = self_trrs_indicator(
            data[:, reference], lag, virtual_window=max(1, cfg.virtual_window // 4)
        )
        return detect_movement(
            indicator, threshold=cfg.movement_threshold, min_run=cfg.movement_min_run
        )

    def _pre_detect(
        self,
        store,
        groups: List[List[AntennaPair]],
        moving: np.ndarray,
        fs: float,
    ) -> List[List[AntennaPair]]:
        """Cheap strided screen: keep pair groups with prominent peaks (§4.3).

        The lead pairs of *all* groups go to the kernel backend in one
        batched request; the strided ``virtual_window=1`` rows it computes
        stay in ``store``, so confirmed groups don't pay for them again in
        the full tracking pass.
        """
        cfg = self.config
        mats = self._kernel.matrices(
            store,
            [group[0] for group in groups],
            virtual_window=1,
            sampling_rate=fs,
            time_stride=cfg.pre_detect_stride,
        )
        scored = []
        for m, group in zip(mats, groups):
            score = peak_prominence_score(m.values, moving)
            obs.observe(
                "trrs.peak_prominence", score, bounds=obs.PROMINENCE_BOUNDS
            )
            scored.append((score, group))
        scored.sort(key=lambda item: item[0], reverse=True)
        keep = [g for s, g in scored[: cfg.pre_detect_keep] if s >= cfg.pre_detect_min_score]
        if not keep and scored:
            keep = [scored[0][1]]
        obs.add("rim.groups_prescreened", len(groups))
        obs.add("rim.groups_confirmed", len(keep))
        return keep

    def _track_groups(
        self, store, candidates: List[List[AntennaPair]], fs: float
    ) -> List[GroupTrack]:
        """Full-resolution matrices and DP tracks for the confirmed groups.

        Every member pair of every candidate group is computed in a single
        batched kernel request (§4.2's group averaging then happens on the
        returned per-pair matrices).
        """
        cfg = self.config
        members = [
            group if cfg.use_parallel_averaging else group[:1]
            for group in candidates
        ]
        mats = self._kernel.matrices(
            store,
            [p for mem in members for p in mem],
            virtual_window=cfg.virtual_window,
            sampling_rate=fs,
        )
        group_matrices = []
        cursor = 0
        for mem in members:
            group_mats = mats[cursor : cursor + len(mem)]
            cursor += len(mem)
            group_matrices.append(
                average_matrices(group_mats) if len(group_mats) > 1 else group_mats[0]
            )
        # All confirmed groups track in one batched kernel request.
        paths = self._kernel.track_paths(
            group_matrices,
            transition_weight=cfg.transition_weight,
            refine=cfg.refine_subsample,
        )
        tracks = []
        for group, matrix, path in zip(candidates, group_matrices, paths):
            quality = path_quality(
                matrix, path, smoothing_window=cfg.quality_smoothing
            )
            tracks.append(
                GroupTrack(pairs=list(group), matrix=matrix, path=path, quality=quality)
            )
        return tracks

    def _stream_cache_safe(self, data: np.ndarray, guard_report) -> bool:
        """May this block seed from / feed the cross-block TRRS cache?

        A cached cell is only valid if the retained samples' normalized
        CFRs are bit-identical to what the previous block computed from.
        Sanitization and normalization are per-sample, so that holds
        unless (a) the guard modified the buffer this block (repairs,
        drops, dedup — all counted in the report), or (b) the loss
        interpolator ran over a buffer containing lost packets, since the
        interpolant near the seam changes as future samples arrive.
        """
        if guard_report is not None and guard_report.repairs():
            return False
        cfg = self.config
        if (
            cfg.interpolate_loss
            and cfg.interpolation_max_gap > 0
            and bool(np.isnan(data.real).any())
        ):
            return False
        return True

    def _post_filter(
        self, tracks: List[GroupTrack], moving: np.ndarray
    ) -> List[GroupTrack]:
        """Keep tracks passing the post-check; never drop below one (§4.3)."""
        if not tracks:
            return tracks
        checked = [(post_check(t.matrix, t.path, moving), t) for t in tracks]
        accepted = [t for chk, t in checked if chk.accepted]
        if accepted:
            return accepted
        best = max(checked, key=lambda item: item[0].mean_prominence)
        return [best[1]]

    def _detect_rotation(
        self,
        trace: CsiTrace,
        store,
        moving: np.ndarray,
        fs: float,
        dead: Optional[set] = None,
    ):
        """Concurrent ring-pair alignment ⇒ in-place rotation (§4.4(3))."""
        cfg = self.config
        if not trace.array.circular:
            return [], []

        ring = adjacent_ring_pairs(trace.array)
        if dead:
            # Pairs touching a dead chain carry all-NaN TRRS rows; drop
            # them from the vote.  The near-unanimity requirement below
            # shrinks with the surviving ring, so rotation sensing keeps
            # working (at reduced confidence) until too few pairs remain.
            ring = [p for p in ring if p.i not in dead and p.j not in dead]
            if len(ring) < 2 * cfg.rotation_min_groups:
                return [], []
        # Cheap screen first: rotation requires most ring pairs prominent.
        # One batched request covers all ring pairs; the strided base rows
        # it computes stay in the store and are reused by the full pass.
        pre_mats = self._kernel.matrices(
            store,
            ring,
            virtual_window=1,
            sampling_rate=fs,
            time_stride=cfg.pre_detect_stride,
        )
        pre_scores = [peak_prominence_score(m.values, moving) for m in pre_mats]
        prominent = sum(s >= cfg.rotation_pre_score for s in pre_scores)
        if prominent < 2 * cfg.rotation_min_groups:
            return [], []

        # In-place rotation moves antennas at the slow arc speed ω·r, so a
        # translation-sized V covers millimeters of aperture and the TRRS
        # averaging starves.  Widen the window to recover spatial diversity
        # (Eqn. 4's benefit scales with the aperture, not the sample count).
        ring_window = min(4 * cfg.virtual_window, 2 * cfg.max_lag + 1)
        ring_mats = self._kernel.matrices(
            store, ring, virtual_window=ring_window, sampling_rate=fs
        )
        # The whole ring tracks in one batched kernel request.
        paths = self._kernel.track_paths(
            ring_mats,
            transition_weight=cfg.transition_weight,
            refine=cfg.refine_subsample,
        )
        tracks = []
        for p, matrix, path in zip(ring, ring_mats, paths):
            quality = path_quality(matrix, path, smoothing_window=cfg.quality_smoothing)
            tracks.append(GroupTrack(pairs=[p], matrix=matrix, path=path, quality=quality))

        # Distinct ring axes aligned simultaneously per sample.  Strength is
        # judged over a short window: peak quality flickers sample to sample
        # even during steady rotation, so we ask each axis to be strong most
        # of the time within ~0.3 s rather than at every instant.
        from repro.core.alignment import nan_moving_average

        axes = np.array([t.axis_angle % np.pi for t in tracks])
        smooth_win = max(3, int(round(0.3 * fs)))
        strong = np.stack(
            [
                nan_moving_average(
                    (t.quality > cfg.rotation_quality).astype(float)[:, None],
                    smooth_win,
                )[:, 0]
                > 0.5
                for t in tracks
            ],
            axis=0,
        )
        # Rotation moves every antenna along the same circle in the same
        # sense, so *all* ring-ordered pairs align with the SAME lag sign.
        # Translation is different in both counts and signs: only the two
        # quasi-parallel axes show (deviated) peaks, and their opposite-side
        # ring pairs carry opposite signs (anti-parallel rays).  Requiring
        # near-unanimous sign-consistent ring alignment rejects those.
        ring_lags = np.stack([t.path.refined_lags for t in tracks], axis=0)
        lag_sign = np.sign(ring_lags)
        abs_lags = np.abs(ring_lags)
        unique_axes = np.unique(np.round(axes, 3))
        t_len = strong.shape[1]
        n_ring = len(tracks)
        need_pairs = max(cfg.rotation_min_groups + 1, n_ring - 2)
        from repro.nanops import nanmedian

        for sign in (1, -1):
            consistent = strong & (lag_sign == sign)
            # All antennas ride the same circle at the same speed, so the
            # sign-consistent pairs must also share |lag|.  Translation's
            # quasi-aligned pairs have a much shorter lag than whatever
            # clutter happens to match their sign, so this kills the
            # remaining false positives.
            masked = np.where(consistent, abs_lags, np.nan)
            med = nanmedian(masked, axis=0)
            with np.errstate(invalid="ignore"):
                coherent = consistent & (abs_lags > 0.55 * med) & (
                    abs_lags < 1.8 * med
                )
            pair_count = coherent.sum(axis=0)
            axis_count = np.zeros(t_len, dtype=np.int64)
            for axis in unique_axes:
                members = np.isclose(axes, axis, atol=1e-3)
                axis_count += coherent[members].any(axis=0)
            candidate = (pair_count >= need_pairs) & (
                axis_count >= cfg.rotation_min_groups
            )
            if sign == 1:
                rotating = candidate
            else:
                rotating = rotating | candidate
        rotating &= moving
        rotating = self._close_mask_gaps(rotating, max_gap=int(round(0.75 * fs)))
        rotating &= moving
        rotating = self._backfill_blind_start(rotating, moving, fs)

        events = self._rotation_events(trace, tracks, rotating, fs)
        return tracks, events

    def _backfill_blind_start(
        self, rotating: np.ndarray, moving: np.ndarray, fs: float
    ) -> np.ndarray:
        """Extend a rotation event back over the blind start-up period.

        Alignment peaks appear only after the follower has rotated through
        the adjacent arc (§5, minimum initial motion); if a rotation event
        starts shortly after movement starts, the preceding moving samples
        were blind rotation, not stillness.
        """
        idx = np.nonzero(rotating)[0]
        mov = np.nonzero(moving)[0]
        if idx.size == 0 or mov.size == 0:
            return rotating
        start = idx[0]
        move_start = mov[0]
        blind_budget = self.config.max_lag + self.config.virtual_window
        if 0 < start - move_start <= blind_budget and moving[move_start:start].all():
            rotating = rotating.copy()
            rotating[move_start:start] = True
        return rotating

    @staticmethod
    def _close_mask_gaps(mask: np.ndarray, max_gap: int) -> np.ndarray:
        """Bridge short False runs between True runs (rotation continuity)."""
        mask = mask.copy()
        idx = np.nonzero(mask)[0]
        if idx.size < 2:
            return mask
        gaps = np.diff(idx)
        for where in np.nonzero((gaps > 1) & (gaps <= max_gap))[0]:
            mask[idx[where] : idx[where + 1]] = True
        return mask

    def _rotation_events(self, trace, tracks, rotating, fs) -> List[RotationEvent]:
        from repro.arrays.geometry import arc_separation

        cfg = self.config
        events: List[RotationEvent] = []
        ring_lags = np.stack([t.path.refined_lags for t in tracks], axis=0)
        # Only count lags where the ring pair actually shows a peak.
        strong = np.stack([t.quality > cfg.rotation_quality for t in tracks], axis=0)
        ring_lags = np.where(strong, ring_lags, np.nan)
        arc = arc_separation(trace.array, tracks[0].pairs[0].i, tracks[0].pairs[0].j)
        radius = trace.array.radius

        t = rotating.size
        k = 0
        while k < t:
            if not rotating[k]:
                k += 1
                continue
            start = k
            while k < t and rotating[k]:
                k += 1
            stop = k
            active = np.zeros(t, dtype=bool)
            active[start:stop] = True
            angle = integrate_rotation(
                ring_lags,
                arc_separation=arc,
                radius=radius,
                sampling_rate=fs,
                times=trace.times,
                active=active,
                min_lag=cfg.min_speed_lag,
            )
            if abs(angle) > 1e-3:
                events.append(RotationEvent(start_index=start, stop_index=stop, angle=angle))
        return events

    def _reckon(
        self,
        trace: CsiTrace,
        tracks: List[GroupTrack],
        moving: np.ndarray,
        rotations: List[RotationEvent],
        fs: float,
        blind: Optional[np.ndarray] = None,
    ) -> MotionEstimate:
        cfg = self.config
        t = trace.n_samples

        translating = moving.copy()
        for ev in rotations:
            translating[ev.start_index : ev.stop_index] = False

        choice = select_group_per_sample(
            tracks,
            translating,
            hysteresis=cfg.selection_hysteresis,
            min_quality=cfg.selection_min_quality,
        )

        speed = np.full(t, np.nan)
        heading = np.full(t, np.nan)
        for g, track in enumerate(tracks):
            sel = choice == g
            if not sel.any():
                continue
            lags = track.path.refined_lags
            v = speed_from_lags(lags, track.separation, fs, min_lag=cfg.min_speed_lag)
            speed[sel] = v[sel]
            # heading() depends only on the lag's sign, so evaluate it for
            # the two possible signs and broadcast — same values as the
            # per-sample calls, without T python-level invocations.
            pair = track.pairs[0]
            ang = np.where(lags >= 0, pair.heading(1), pair.heading(-1))
            heading[sel] = ang[sel]

        if cfg.fine_direction and tracks:
            from repro.core.finedirection import refine_headings

            heading = refine_headings(
                tracks, choice, heading, floor=cfg.selection_min_quality
            )

        if blind is not None and blind.any():
            speed[blind] = np.nan
            heading[blind] = np.nan

        speed = self._fill_speed_episodes(speed, translating)
        speed = smooth_speed(speed, cfg.speed_smoothing)
        speed = np.where(translating, speed, 0.0)
        heading = np.where(translating, heading, np.nan)

        return MotionEstimate(
            times=trace.times,
            moving=moving,
            speed=speed,
            heading=heading,
            group_choice=choice,
            rotations=rotations,
        )

    def _fill_speed_episodes(self, speed: np.ndarray, moving: np.ndarray) -> np.ndarray:
        """Fill speed gaps inside each moving episode.

        Interior NaNs hold the previous estimate.  Leading NaNs (the blind
        start-up period of §5: the follower must first travel Δd) are
        backfilled with the first measured speed, which integrates to the
        Δd compensation the paper applies.
        """
        out = speed.copy()
        t = speed.size
        k = 0
        while k < t:
            if not moving[k]:
                k += 1
                continue
            start = k
            while k < t and moving[k]:
                k += 1
            stop = k
            seg = out[start:stop]
            finite = np.nonzero(np.isfinite(seg))[0]
            if finite.size == 0:
                continue
            if self.config.min_initial_distance_compensation:
                seg[: finite[0]] = seg[finite[0]]
            for idx in range(finite[0] + 1, seg.size):
                if not np.isfinite(seg[idx]):
                    seg[idx] = seg[idx - 1]
            out[start:stop] = seg
        return out
