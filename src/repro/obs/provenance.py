"""Per-sample provenance: trace ids plus monotonic stage timestamps.

A :class:`SampleProvenance` is minted where a CSI packet enters the
pipeline (``NetClient.send`` on the remote side, or
``SessionManager.push`` / ``ServeSession.offer`` in-process), rides the
sample through the ingest queue into the streaming kernel, and is
resolved into a latency **breakdown** when the block that sample
completes emits its :class:`~repro.core.rim.MotionUpdate`:

``created`` → ``ingest`` → (queue) → ``kernel_entry`` → ``kernel_exit``
→ ``emit``

The breakdown is a telescoping decomposition, so the per-stage values
sum *exactly* to the end-to-end figure::

    wire_s       = ingest       - created       (client send -> server admit)
    queue_wait_s = kernel_entry - ingest        (time parked in the queue)
    kernel_s     = kernel_exit  - kernel_entry  (StreamingRim block compute)
    emit_s       = emit         - kernel_exit   (update assembly/bookkeeping)
    e2e_s        = wire_s + queue_wait_s + kernel_s + emit_s

Timestamps come from :func:`time.perf_counter`, which on Linux is
``CLOCK_MONOTONIC`` — comparable across processes on one host, which is
exactly the loopback / LAN deployment the net front-end targets.  A
``created`` stamp taken on a remote host with a different clock origin
is clamped at ingest so stages can never go negative.

Everything here is observational: contexts are only minted while
``obs.enabled()`` and never touch the numerics (enforced by the
bit-for-bit invariance guard in ``tests/test_obs.py``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

# Histogram names for the per-stage latency distributions.
PROV_HISTOGRAMS = (
    "prov.wire_s",
    "prov.queue_wait_s",
    "prov.kernel_s",
    "prov.emit_s",
    "prov.e2e_s",
)

# Keys of a resolved breakdown dict, in pipeline order.
BREAKDOWN_STAGES = ("wire_s", "queue_wait_s", "kernel_s", "emit_s")


class SampleProvenance:
    """Trace context for one CSI sample.

    Args:
        trace_id: Stable identifier, conventionally ``"<session>:<seq>"``.
        created_s: ``perf_counter`` stamp from the producer side; defaults
            to *now* for contexts minted at the ingest boundary itself.
    """

    __slots__ = ("trace_id", "created_s", "ingest_s", "dequeue_s")

    def __init__(self, trace_id: str, created_s: Optional[float] = None):
        self.trace_id = str(trace_id)
        self.created_s = (
            time.perf_counter() if created_s is None else float(created_s)
        )
        self.ingest_s: Optional[float] = None
        self.dequeue_s: Optional[float] = None

    def stamp_ingest(self) -> None:
        """Mark admission into a serve queue (idempotent)."""
        if self.ingest_s is None:
            self.ingest_s = time.perf_counter()
            # A remote clock ahead of ours would make wire_s negative;
            # clamp so the telescoping sum stays exact and non-negative.
            if self.created_s > self.ingest_s:
                self.created_s = self.ingest_s

    def stamp_dequeue(self) -> None:
        """Mark removal from the serve queue toward the kernel."""
        self.dequeue_s = time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SampleProvenance({self.trace_id!r}, created={self.created_s:.6f})"


def block_breakdown(
    prov: SampleProvenance,
    kernel_entry_s: float,
    kernel_exit_s: float,
    emit_s: float,
    n_samples: int = 0,
) -> Dict[str, Any]:
    """Resolve a block-completing sample's context into stage latencies.

    ``prov`` is the context of the sample whose arrival triggered the
    block emission — the freshest sample in the block, so its end-to-end
    latency is the pipeline's current responsiveness.  Stages are clamped
    at zero individually and ``e2e_s`` is defined as their sum, keeping
    the invariant ``e2e_s == wire_s + queue_wait_s + kernel_s + emit_s``
    exact even under clock oddities.
    """
    if prov.ingest_s is None:
        prov.stamp_ingest()
    wire = max(0.0, prov.ingest_s - prov.created_s)
    queue = max(0.0, kernel_entry_s - prov.ingest_s)
    kernel = max(0.0, kernel_exit_s - kernel_entry_s)
    emit = max(0.0, emit_s - kernel_exit_s)
    return {
        "trace_id": prov.trace_id,
        "wire_s": wire,
        "queue_wait_s": queue,
        "kernel_s": kernel,
        "emit_s": emit,
        "e2e_s": wire + queue + kernel + emit,
        "n_samples": int(n_samples),
    }


def observe_breakdown(breakdown: Dict[str, Any]) -> None:
    """Feed one resolved breakdown into the per-stage latency histograms."""
    from repro import obs

    for stage in BREAKDOWN_STAGES:
        obs.observe(
            f"prov.{stage}", breakdown[stage], bounds=obs.LATENCY_BOUNDS_S
        )
    obs.observe("prov.e2e_s", breakdown["e2e_s"], bounds=obs.LATENCY_BOUNDS_S)


def validate_breakdown(breakdown: Dict[str, Any], tol: float = 1e-9) -> None:
    """Raise ``ValueError`` unless the stage sum matches ``e2e_s``."""
    missing = [
        k
        for k in (*BREAKDOWN_STAGES, "e2e_s", "trace_id")
        if k not in breakdown
    ]
    if missing:
        raise ValueError(f"breakdown missing keys {missing}")
    total = sum(float(breakdown[k]) for k in BREAKDOWN_STAGES)
    if abs(total - float(breakdown["e2e_s"])) > tol:
        raise ValueError(
            f"stage sum {total!r} inconsistent with e2e {breakdown['e2e_s']!r}"
        )
