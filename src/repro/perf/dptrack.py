"""Batched DP peak tracking: banded native sweep + exact numpy fallback.

The reference tracker (:func:`repro.core.tracking.track_peaks`) runs the
Bellman recursion of §4.2 one matrix at a time, with a per-step ``(L, L)``
candidate table and a Python-level loop over time steps.  This module
supplies the batched formulation the ``batched`` kernel backend uses for
its ``track_paths`` capability: the forward pass runs over a whole
*stack* of alignment matrices at once, and two implementations serve it —

* a **native banded kernel** (``_dptrack.c``), compiled on demand with
  the system C compiler and cached as a shared library.  It sweeps the
  candidate table lag-outermost with a branchless blend that reproduces
  ``np.argmax``'s first-index tie-break exactly, and prunes the sweep to
  the data-adaptive dominance radius ``(base_max - base_min) / c + 4``
  (see the safety argument in the C source and
  ``docs/performance.md``);
* an **exact numpy fallback** that evaluates the same candidate sums
  batched across matrices (``cand[p, n, l] = base[p, l] + jc[n, l]``,
  lossless because the jump cost is symmetric) with a contiguous
  last-axis argmax.

Both paths produce bit-identical backpointers, tie decisions, and scores
relative to the reference recursion — enforced by
``tests/test_tracking_dp.py`` and ``tests/test_kernel_backends.py`` —
so which one serves a request is purely a speed question.  Compilation
failures (no compiler, sandboxed filesystem, exotic platform) silently
select the fallback; set ``RIM_DP_NATIVE=0`` to force it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

RIM_DP_NATIVE_ENV = "RIM_DP_NATIVE"  # "0" disables the compiled kernel
RIM_DP_CACHE_ENV = "RIM_DP_CACHE_DIR"  # overrides the .so cache directory

_SOURCE = Path(__file__).with_name("_dptrack.c")

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False


def _cache_dir() -> Path:
    override = os.environ.get(RIM_DP_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-rim"


def _compile(source: Path, out: Path) -> bool:
    """Build ``source`` into the shared library ``out``; False on failure."""
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    base_cmd = ["cc", "-O3", "-fPIC", "-shared", str(source), "-o", tmp, "-lm"]
    # -march=native unlocks vectorization of the blend loop; some
    # toolchains (older cross setups) reject it, so retry portably.
    for extra in (["-march=native"], []):
        cmd = base_cmd[:1] + extra + base_cmd[1:]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, timeout=120, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            break
        if proc.returncode == 0:
            os.replace(tmp, out)
            return True
    try:
        os.unlink(tmp)
    except OSError:
        pass
    return False


def _load_native() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, building it on first use; None if not."""
    global _lib, _load_attempted
    if os.environ.get(RIM_DP_NATIVE_ENV, "1") == "0":
        return None
    if _load_attempted:
        return _lib
    with _lock:
        if _load_attempted:
            return _lib
        lib = None
        try:
            source = _SOURCE.read_bytes()
            tag = hashlib.sha256(source).hexdigest()[:16]
            so_path = _cache_dir() / f"_dptrack-{tag}.so"
            if not so_path.exists():
                if not _compile(_SOURCE, so_path):
                    so_path = None
            if so_path is not None:
                lib = ctypes.CDLL(str(so_path))
                for name, real in (
                    ("dp_forward_f64", ctypes.c_double),
                    ("dp_forward_f32", ctypes.c_float),
                ):
                    fn = getattr(lib, name)
                    ptr = ctypes.POINTER(real)
                    i32p = ctypes.POINTER(ctypes.c_int32)
                    fn.argtypes = [
                        ptr, ptr, ptr, i32p,
                        ctypes.c_ssize_t, ctypes.c_ssize_t, ctypes.c_ssize_t,
                        real,
                    ]
                    fn.restype = ctypes.c_int
                bt = lib.dp_backtrace
                bt.argtypes = [
                    ctypes.POINTER(ctypes.c_int32),
                    ctypes.POINTER(ctypes.c_int64),
                    ctypes.c_ssize_t, ctypes.c_ssize_t, ctypes.c_ssize_t,
                ]
                bt.restype = None
        except (OSError, AttributeError):
            lib = None
        _lib = lib
        _load_attempted = True
        return _lib


def native_available() -> bool:
    """Whether the compiled banded kernel is (buildable and) loaded."""
    return _load_native() is not None


def _jump_cost(n_lags: int, transition_weight: float, dtype) -> np.ndarray:
    """The (L, L) table ω·|l-n|/(2W), in the reference's exact expression."""
    lag_axis = np.arange(n_lags)
    jc = (
        transition_weight
        * np.abs(lag_axis[:, None] - lag_axis[None, :])
        / max(1, n_lags - 1)
    )
    return np.ascontiguousarray(jc, dtype=dtype)


def _forward_native(
    lib: ctypes.CDLL, e: np.ndarray, jc: np.ndarray, c: float
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Run the compiled forward pass; None when L exceeds its stack cap."""
    n_mat, t, n_lags = e.shape
    real = e.dtype.type
    score = np.empty((n_mat, n_lags), dtype=e.dtype)
    backptr = np.zeros((t, n_mat, n_lags), dtype=np.int32)
    fn = lib.dp_forward_f32 if real is np.float32 else lib.dp_forward_f64
    ctype = ctypes.c_float if real is np.float32 else ctypes.c_double
    ptr = ctypes.POINTER(ctype)
    i32p = ctypes.POINTER(ctypes.c_int32)
    rc = fn(
        e.ctypes.data_as(ptr),
        jc.ctypes.data_as(ptr),
        score.ctypes.data_as(ptr),
        backptr.ctypes.data_as(i32p),
        ctypes.c_ssize_t(n_mat),
        ctypes.c_ssize_t(t),
        ctypes.c_ssize_t(n_lags),
        ctype(c),
    )
    if rc != 0:
        return None
    return backptr, score


def _forward_numpy(e: np.ndarray, jc: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Exact batched Bellman forward pass (the no-compiler path).

    Evaluates ``cand[p, n, l] = base[p, l] + jc[n, l]`` — the reference
    candidate table transposed, which is lossless because the jump cost
    is symmetric — so the contiguous last-axis argmax keeps numpy's
    first-index tie-break over the origin lag ``l``.
    """
    n_mat, t, n_lags = e.shape
    score = e[:, 0].copy()
    backptr = np.zeros((t, n_mat, n_lags), dtype=np.int32)
    cand = np.empty((n_mat, n_lags, n_lags), dtype=e.dtype)
    base = np.empty((n_mat, n_lags), dtype=e.dtype)
    pidx = np.arange(n_mat)[:, None]
    lag_axis = np.arange(n_lags)[None, :]
    for step in range(1, t):
        np.add(score, e[:, step - 1], out=base)
        np.add(base[:, None, :], jc[None], out=cand)
        best_prev = np.argmax(cand, axis=2)
        backptr[step] = best_prev
        np.add(cand[pidx, lag_axis, best_prev], e[:, step], out=score)
    return backptr, score


def dp_track_batch(
    e_stack: np.ndarray, transition_weight: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Optimal DP lag paths for a stack of evidence matrices at once.

    Args:
        e_stack: (P, T, L) float32/float64 evidence (NaNs already zeroed,
            exactly as :func:`repro.core.tracking.track_peaks` prepares
            its matrix).  The dtype selects the kernel precision.
        transition_weight: ω < 0 of Eqn. 7.

    Returns:
        ``(lag_indices, scores)``: (P, T) int64 tracked columns and the
        (P,) total accumulated score of each optimal path.  Identical to
        running the reference recursion per matrix: same candidate sums,
        same first-index tie-breaks, same backpointers.
    """
    e = np.ascontiguousarray(e_stack)
    n_mat, t, n_lags = e.shape
    jc = _jump_cost(n_lags, transition_weight, e.dtype)
    lib = _load_native()
    native = None
    if lib is not None:
        # c > 0 is the per-lag cost slope the dominance band divides by.
        c = -transition_weight / max(1, n_lags - 1)
        native = _forward_native(lib, e, jc, c)
    if native is not None:
        backptr, score = native
    else:
        backptr, score = _forward_numpy(e, jc)

    lag_indices = np.empty((n_mat, t), dtype=np.int64)
    lag_indices[:, -1] = np.argmax(score, axis=1)
    if native is not None:
        lib.dp_backtrace(
            backptr.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
            lag_indices.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            ctypes.c_ssize_t(n_mat),
            ctypes.c_ssize_t(t),
            ctypes.c_ssize_t(n_lags),
        )
    else:
        pflat = np.arange(n_mat)
        for step in range(t - 1, 0, -1):
            lag_indices[:, step - 1] = backptr[step, pflat, lag_indices[:, step]]
    return lag_indices, np.max(score, axis=1).astype(np.float64)
