"""Unit tests for CSI phase sanitization."""

import numpy as np
import pytest

from repro.channel.impairments import CsiImpairer, clean
from repro.channel.ofdm import make_grid
from repro.core.sanitize import estimate_phase_slope, remove_phase_slope, sanitize_trace
from repro.core.trrs import trrs_cfr


def _flat_cfr_with_slope(slope, s=32):
    tones = np.arange(s)
    return np.exp(1j * slope * tones)


class TestEstimateSlope:
    def test_recovers_pure_ramp(self):
        h = _flat_cfr_with_slope(0.13)
        assert estimate_phase_slope(h) == pytest.approx(0.13, abs=1e-9)

    def test_negative_slope(self):
        h = _flat_cfr_with_slope(-0.3)
        assert estimate_phase_slope(h) == pytest.approx(-0.3, abs=1e-9)

    def test_wrapping_tolerated(self):
        """Slopes beyond π across the band still estimate correctly."""
        h = _flat_cfr_with_slope(0.5)  # total phase 16 rad, wraps many times
        assert estimate_phase_slope(h) == pytest.approx(0.5, abs=1e-9)

    def test_batched(self):
        h = np.stack([_flat_cfr_with_slope(0.1), _flat_cfr_with_slope(0.2)])
        slopes = estimate_phase_slope(h)
        np.testing.assert_allclose(slopes, [0.1, 0.2], atol=1e-9)

    def test_needs_two_tones(self):
        with pytest.raises(ValueError):
            estimate_phase_slope(np.ones(1, dtype=complex))

    def test_robust_to_noise(self, rng):
        h = _flat_cfr_with_slope(0.2, s=114)
        noisy = h + 0.05 * (rng.standard_normal(114) + 1j * rng.standard_normal(114))
        assert estimate_phase_slope(noisy) == pytest.approx(0.2, abs=0.01)


class TestRemoveSlope:
    def test_ramp_removed(self):
        h = _flat_cfr_with_slope(0.25)
        out = remove_phase_slope(h)
        phases = np.angle(out)
        assert phases.std() < 1e-9

    def test_preserves_magnitude(self, rng):
        h = (rng.standard_normal(32) + 1j * rng.standard_normal(32)).astype(np.complex64)
        out = remove_phase_slope(h)
        np.testing.assert_allclose(np.abs(out), np.abs(h), rtol=1e-5)

    def test_idempotent_on_sanitized(self, rng):
        h = _flat_cfr_with_slope(0.4) * (1.0 + 0.01 * rng.standard_normal(32))
        once = remove_phase_slope(h)
        twice = remove_phase_slope(once)
        np.testing.assert_allclose(np.abs(np.vdot(once, twice)), np.abs(np.vdot(once, once)), rtol=1e-6)

    def test_centered_ramp_no_common_phase(self):
        """Sanitization must not inject a tone-independent phase shift."""
        h = _flat_cfr_with_slope(0.2, s=33)
        out = remove_phase_slope(h)
        mid = 16
        assert np.angle(out[mid] / h[mid]) == pytest.approx(0.0, abs=1e-9)


class TestSanitizeTrace:
    def test_restores_cross_packet_trrs(self):
        """The point of sanitization: STO jitter decorrelates raw inner
        products; after slope removal TRRS between co-located packets
        returns to ~1 (§3.2)."""
        rng = np.random.default_rng(41)
        grid = make_grid()
        # A realistic multipath CFR: a handful of delayed rays, smooth
        # across tones (unlike iid noise, which has no coherent slope).
        delays_ns = rng.uniform(10, 150, 8)
        gains = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        freqs = grid.baseband_frequencies
        base = (gains[None, :] * np.exp(-2j * np.pi * freqs[:, None] * delays_ns[None, :] * 1e-9)).sum(axis=1)
        csi = np.tile(base, (20, 1, 1, 1)).astype(np.complex64)
        cfg = clean()
        cfg.timing_jitter_std = 0.8
        imp = CsiImpairer(cfg, grid, n_rx=1, rng=rng)
        impaired = imp.apply(csi)

        raw_trrs = trrs_cfr(impaired[0, 0, 0], impaired[1, 0, 0])
        cleaned = sanitize_trace(impaired)
        fixed_trrs = trrs_cfr(cleaned[0, 0, 0], cleaned[1, 0, 0])
        assert fixed_trrs > raw_trrs
        assert fixed_trrs > 0.98

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            sanitize_trace(np.zeros((5, 2, 16), dtype=np.complex64))

    def test_nan_packets_preserved(self, rng):
        csi = (rng.standard_normal((4, 1, 1, 16)) + 1j * rng.standard_normal((4, 1, 1, 16))).astype(np.complex64)
        csi[2] = np.nan
        out = sanitize_trace(csi)
        assert np.isnan(out[2]).all()
        assert np.isfinite(out[[0, 1, 3]]).all()
