"""Unit tests for the OFDM subcarrier grid."""

import numpy as np
import pytest

from repro.channel.ofdm import SubcarrierGrid, make_grid


class TestMakeGrid:
    def test_40mhz_has_114_tones(self):
        grid = make_grid(bandwidth=40e6)
        assert grid.n_subcarriers == 114

    def test_20mhz_has_56_tones(self):
        grid = make_grid(bandwidth=20e6)
        assert grid.n_subcarriers == 56

    def test_40mhz_spacing_is_3125khz(self):
        grid = make_grid(bandwidth=40e6)
        assert grid.spacing == pytest.approx(312500.0)

    def test_20mhz_spacing_is_3125khz(self):
        grid = make_grid(bandwidth=20e6)
        assert grid.spacing == pytest.approx(312500.0)

    def test_dc_tones_excluded(self):
        grid = make_grid(bandwidth=40e6)
        assert 0 not in grid.indices
        assert 1 not in grid.indices
        assert -1 not in grid.indices

    def test_indices_symmetric(self):
        grid = make_grid(bandwidth=40e6)
        assert set(grid.indices) == {-i for i in grid.indices}

    def test_edge_tones(self):
        grid = make_grid(bandwidth=40e6)
        assert min(grid.indices) == -58
        assert max(grid.indices) == 58

    def test_unsupported_bandwidth_raises(self):
        with pytest.raises(ValueError, match="unsupported bandwidth"):
            make_grid(bandwidth=80e6)

    def test_frequencies_centered_on_carrier(self):
        grid = make_grid(carrier_frequency=5.8e9)
        freqs = grid.frequencies
        assert freqs.mean() == pytest.approx(5.8e9, rel=1e-9)

    def test_frequencies_match_indices(self):
        grid = make_grid()
        expected = grid.carrier_frequency + grid.spacing * np.array(grid.indices)
        np.testing.assert_allclose(grid.frequencies, expected)

    def test_baseband_frequencies_span_bandwidth(self):
        grid = make_grid(bandwidth=40e6)
        span = grid.baseband_frequencies.max() - grid.baseband_frequencies.min()
        assert span == pytest.approx(116 * 312500.0)


class TestGrouped:
    def test_grouped_count(self):
        grid = make_grid().grouped(30)
        assert grid.n_subcarriers == 30

    def test_grouped_preserves_span(self):
        grid = make_grid()
        grouped = grid.grouped(30)
        assert min(grouped.indices) == min(grid.indices)
        assert max(grouped.indices) == max(grid.indices)

    def test_grouped_subset_of_original(self):
        grid = make_grid()
        grouped = grid.grouped(30)
        assert set(grouped.indices) <= set(grid.indices)

    def test_grouped_full_is_identity(self):
        grid = make_grid()
        assert grid.grouped(grid.n_subcarriers).indices == grid.indices

    def test_grouped_invalid_raises(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            grid.grouped(0)
        with pytest.raises(ValueError):
            grid.grouped(grid.n_subcarriers + 1)

    def test_grouped_keeps_spacing_metadata(self):
        grid = make_grid()
        grouped = grid.grouped(10)
        assert grouped.spacing == grid.spacing
        assert grouped.carrier_frequency == grid.carrier_frequency


class TestIndexArray:
    def test_index_array_dtype(self):
        grid = make_grid()
        assert grid.index_array.dtype == np.float64

    def test_index_array_matches_indices(self):
        grid = make_grid()
        np.testing.assert_array_equal(grid.index_array, np.array(grid.indices, dtype=float))
