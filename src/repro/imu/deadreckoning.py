"""Inertial dead reckoning — what the paper's baselines actually compute.

These are deliberately *standard* algorithms (double integration, rate
integration, magnetometer heading) so the comparison against RIM reflects
the sensors' intrinsic error behavior (§6.2.1, §6.2.3, Fig. 7), not clever
filtering.  They also feed the RIM+IMU fusion of §6.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imu.sensors import ImuReadings


@dataclass
class DeadReckoningResult:
    """Inertial navigation output.

    Attributes:
        times: (T,) timestamps.
        positions: (T, 2) double-integrated positions, world frame.
        distance: (T,) cumulative path length of the integrated track.
        heading: (T,) gyro-integrated orientation, radians.
    """

    times: np.ndarray
    positions: np.ndarray
    distance: np.ndarray
    heading: np.ndarray


def integrate_imu(
    readings: ImuReadings,
    initial_heading: float = 0.0,
    initial_velocity=(0.0, 0.0),
) -> DeadReckoningResult:
    """Strapdown integration of 2D IMU readings.

    The gyro is integrated into orientation; body-frame accelerations are
    rotated into the world frame and double-integrated into positions.
    This accumulates the errors the paper describes: bias²/2·t² position
    drift from the accelerometer and linear heading drift from the gyro.

    Args:
        readings: Simulated IMU output.
        initial_heading: True initial orientation (assumed known, as in the
            paper's tracking experiments).
        initial_velocity: True initial velocity.

    Returns:
        :class:`DeadReckoningResult`.
    """
    t = readings.times.size
    dt = np.diff(readings.times, prepend=readings.times[0])
    dt[0] = 0.0

    heading = initial_heading + np.cumsum(readings.gyro * dt)

    cos, sin = np.cos(heading), np.sin(heading)
    acc_world = np.stack(
        [
            cos * readings.accel[:, 0] - sin * readings.accel[:, 1],
            sin * readings.accel[:, 0] + cos * readings.accel[:, 1],
        ],
        axis=1,
    )
    vel = np.asarray(initial_velocity, dtype=np.float64) + np.cumsum(
        acc_world * dt[:, None], axis=0
    )
    positions = np.cumsum(vel * dt[:, None], axis=0)
    steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
    distance = np.concatenate([[0.0], np.cumsum(steps)])

    return DeadReckoningResult(
        times=readings.times.copy(),
        positions=positions,
        distance=distance,
        heading=heading,
    )


def gyro_rotation_angle(readings: ImuReadings) -> float:
    """Net rotation angle from gyro integration (the Fig. 13 baseline)."""
    dt = np.diff(readings.times, prepend=readings.times[0])
    dt[0] = 0.0
    return float(np.sum(readings.gyro * dt))


def accelerometer_movement_indicator(
    readings: ImuReadings, window_seconds: float = 0.25
) -> np.ndarray:
    """Movement indicator from accelerometer energy (Fig. 7 'Acc' curve).

    The windowed standard deviation of the acceleration magnitude,
    normalized to [0, 1] over the trace.  Constant-velocity movement
    produces *no* acceleration, which is exactly why the accelerometer
    misses the transient stops in Fig. 7.
    """
    mag = np.linalg.norm(readings.accel, axis=1)
    fs = 1.0 / np.median(np.diff(readings.times))
    win = max(3, int(round(window_seconds * fs)))
    t = mag.size
    out = np.empty(t)
    half = win // 2
    for k in range(t):
        lo = max(0, k - half)
        hi = min(t, k + half + 1)
        out[k] = mag[lo:hi].std()
    rng_span = out.max() - out.min()
    if rng_span > 0:
        out = (out - out.min()) / rng_span
    return out


def gyroscope_movement_indicator(
    readings: ImuReadings, window_seconds: float = 0.25
) -> np.ndarray:
    """Movement indicator from gyro energy (Fig. 7 'Gyr' curve).

    Pure translation produces no angular rate, so the gyroscope cannot see
    straight-line motion at all — the other failure mode of Fig. 7.
    """
    fs = 1.0 / np.median(np.diff(readings.times))
    win = max(3, int(round(window_seconds * fs)))
    mag = np.abs(readings.gyro)
    t = mag.size
    out = np.empty(t)
    half = win // 2
    for k in range(t):
        lo = max(0, k - half)
        hi = min(t, k + half + 1)
        out[k] = mag[lo:hi].std()
    rng_span = out.max() - out.min()
    if rng_span > 0:
        out = (out - out.min()) / rng_span
    return out
