"""Cross-block reuse of banded TRRS rows for :class:`StreamingRim`.

Every streaming block reprocesses the trailing context window (lag band W
plus virtual aperture V plus the movement lag), so without reuse the
alignment kernels recompute the context's TRRS cells on every block.  A
base-TRRS cell ``(t, l)`` depends on exactly two samples — ``t`` and
``t - l`` — so a cell computed in the previous block is still valid in
the next one whenever both samples are still in the buffer and their
normalized CFRs are unchanged.  :class:`StreamAlignmentCache` holds the
previous block's per-pair cell matrices (values + known mask) keyed by
the buffer's *global* sample offset; seeding shifts them into the new
block's row coordinates, drops cells whose partner sample fell off the
front of the buffer, and leaves only the genuinely new cells (the pushed
samples and the seam band reaching into them) for the kernel.

Validity is the caller's responsibility (``Rim`` enforces it): the cache
must be **cleared** whenever the block's retained samples may differ
from what the previous block saw —

* the guard repaired/dropped/deduplicated packets this block,
* the stream clock was resampled onto the nominal grid, or
* loss interpolation ran over a buffer containing lost packets (the
  interpolant near the seam changes as future samples arrive).

Under those rules a seeded cell is bit-identical to recomputing it, so
streamed outputs never depend on block history (enforced by
``tests/test_kernel_backends.py`` / ``tests/test_streaming.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class StreamAlignmentCache:
    """Previous-block base-TRRS cells, per antenna pair, globally indexed."""

    def __init__(self):
        self.offset = 0  # global sample index of row 0 of the stored arrays
        self.max_lag = None
        self.entries: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self.seeded_cells = 0  # cells served from cache over the stream's life
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self.entries)

    def reset(self) -> None:
        """Forget everything including position and lifetime stats.

        :meth:`clear` keeps the reuse statistics (it marks an
        invalidation mid-stream); ``reset`` is for starting a genuinely
        new stream in the same object.
        """
        self.offset = 0
        self.max_lag = None
        self.entries = {}
        self.seeded_cells = 0
        self.invalidations = 0

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot (checkpoint/resume support).

        Entry arrays are copied, so the snapshot stays valid when the
        live cache moves on.
        """
        return {
            "offset": int(self.offset),
            "max_lag": self.max_lag,
            "seeded_cells": int(self.seeded_cells),
            "invalidations": int(self.invalidations),
            "entries": {
                key: (vals.copy(), known.copy())
                for key, (vals, known) in self.entries.items()
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output bit-exactly."""
        self.offset = int(state["offset"])  # type: ignore[arg-type]
        max_lag = state["max_lag"]
        self.max_lag = None if max_lag is None else int(max_lag)  # type: ignore[arg-type]
        self.seeded_cells = int(state["seeded_cells"])  # type: ignore[arg-type]
        self.invalidations = int(state["invalidations"])  # type: ignore[arg-type]
        def _vals(v) -> np.ndarray:
            # Preserve the kernel dtype across checkpoint round-trips:
            # float32 stores must resume with float32 cells.  Anything
            # else (e.g. lists from a hand-built state) lands on float64.
            arr = np.asarray(v)
            if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                arr = arr.astype(np.float64)
            return arr

        self.entries = {
            (int(key[0]), int(key[1])): (
                _vals(vals),
                np.asarray(known, dtype=bool),
            )
            for key, (vals, known) in state["entries"].items()  # type: ignore[union-attr]
        }

    def clear(self) -> None:
        """Drop everything (guard repair / clock resample / config change)."""
        if self.entries:
            self.invalidations += 1
        self.entries = {}
        self.max_lag = None

    def seed(self, store, offset: int) -> None:
        """Copy still-valid cached cells into a fresh block's row store.

        Args:
            store: The block's :class:`~repro.perf.kernels.BaseRowStore`.
            offset: Global sample index of the block buffer's row 0.
        """
        if not self.entries:
            return
        shift = offset - self.offset
        if shift < 0 or self.max_lag != store.max_lag:
            self.clear()
            return
        # A kernel-dtype switch (float64 <-> float32 resume) invalidates
        # every cached cell: seeded values must be bit-identical to what
        # the new store would compute.
        if any(vals.dtype != store.dtype for vals, _ in self.entries.values()):
            self.clear()
            return
        w = store.max_lag
        for key, (vals, known) in self.entries.items():
            n = min(vals.shape[0] - shift, store.t)
            if n <= 0:
                continue
            v_new, k_new = store.entry(key)
            v_new[:n] = vals[shift : shift + n]
            k_new[:n] = known[shift : shift + n]
            # A cached cell (r, lag) referenced partner sample r - lag; rows
            # dropped off the front of the buffer make small-r positive-lag
            # partners negative in the new coordinates — those cells are NaN
            # border cells now, so un-know them.
            for lag in range(1, w + 1):
                edge = min(lag, n)
                col = w + lag
                v_new[:edge, col] = np.nan
                k_new[:edge, col] = False
            self.seeded_cells += int(k_new[:n].sum())

    def capture(self, store, offset: int) -> None:
        """Snapshot a block's computed cells for the next block to seed from."""
        self.entries = {
            key: (store.values[key].copy(), store.known[key].copy())
            for key in store.values
        }
        self.offset = int(offset)
        self.max_lag = store.max_lag
