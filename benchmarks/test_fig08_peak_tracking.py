"""Bench: Fig. 8 — dynamic-programming TRRS peak tracking."""

from repro.eval.experiments import run_fig8_peak_tracking
from repro.eval.report import print_report


def test_fig8_peak_tracking(benchmark, quick):
    result = benchmark.pedantic(
        run_fig8_peak_tracking, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 8 — DP peak tracking", result)
    m = result["measured"]
    # Shape: tracked lags sit at the expected alignment delay and flip
    # sign when the direction reverses.
    assert m["sign_flip_detected"]
    assert abs(abs(m["forward_lag"]) - m["expected_abs_lag"]) < 4.0
    assert abs(abs(m["backward_lag"]) - m["expected_abs_lag"]) < 4.0
