"""Unit tests for antenna array geometry and pair bookkeeping."""

import numpy as np
import pytest

from repro.arrays.geometry import (
    AntennaArray,
    arc_separation,
    hexagonal_array,
    l_shaped_array,
    linear_array,
    square_array,
)
from repro.arrays.pairs import (
    adjacent_ring_pairs,
    all_pairs,
    best_pair_for_direction,
    parallel_groups,
    supported_directions,
)
from repro.channel.constants import HALF_WAVELENGTH


class TestArrayFactories:
    def test_linear_spacing(self):
        arr = linear_array(3, spacing=0.03)
        assert arr.separation(0, 1) == pytest.approx(0.03)
        assert arr.separation(0, 2) == pytest.approx(0.06)

    def test_linear_centered(self):
        arr = linear_array(4)
        np.testing.assert_allclose(arr.local_positions.mean(axis=0), 0.0, atol=1e-12)

    def test_linear_needs_two(self):
        with pytest.raises(ValueError):
            linear_array(1)

    def test_l_shape_right_angle(self):
        arr = l_shaped_array()
        v1 = arr.local_positions[1] - arr.local_positions[0]
        v2 = arr.local_positions[2] - arr.local_positions[0]
        assert v1 @ v2 == pytest.approx(0.0, abs=1e-12)

    def test_square_four_antennas(self):
        arr = square_array()
        assert arr.n_antennas == 4
        assert arr.circular

    def test_hexagonal_geometry(self):
        """Regular hexagon: circumradius equals side length (§6.2.3)."""
        arr = hexagonal_array()
        assert arr.n_antennas == 6
        assert arr.radius == pytest.approx(HALF_WAVELENGTH)
        ring = adjacent_ring_pairs(arr)
        for pair in ring:
            assert pair.separation == pytest.approx(HALF_WAVELENGTH, rel=1e-9)

    def test_hexagonal_two_nics(self):
        arr = hexagonal_array()
        assert arr.n_nics == 2
        counts = np.bincount(arr.nic_assignment)
        np.testing.assert_array_equal(counts, [3, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            AntennaArray("bad", np.zeros((3, 3)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            AntennaArray("bad", np.zeros((3, 2)), np.zeros(2, dtype=int))


class TestWorldPositions:
    def test_identity_pose(self):
        arr = linear_array(3)
        world = arr.world_positions(np.zeros((1, 2)), np.zeros(1))
        np.testing.assert_allclose(world[0], arr.local_positions)

    def test_translation(self):
        arr = linear_array(2)
        world = arr.world_positions(np.array([[5.0, 3.0]]), np.zeros(1))
        np.testing.assert_allclose(world[0].mean(axis=0), [5.0, 3.0], atol=1e-12)

    def test_rotation_90deg(self):
        arr = linear_array(2, spacing=1.0)
        world = arr.world_positions(np.zeros((1, 2)), np.array([np.pi / 2]))
        # x-axis array rotates onto the y-axis.
        np.testing.assert_allclose(world[0][:, 0], 0.0, atol=1e-12)
        np.testing.assert_allclose(sorted(world[0][:, 1]), [-0.5, 0.5], atol=1e-12)

    def test_rotation_preserves_separations(self):
        arr = hexagonal_array()
        world = arr.world_positions(np.array([[2.0, 1.0]]), np.array([0.7]))
        d_world = np.linalg.norm(world[0][0] - world[0][1])
        assert d_world == pytest.approx(arr.separation(0, 1), rel=1e-12)

    def test_length_mismatch_rejected(self):
        arr = linear_array(2)
        with pytest.raises(ValueError):
            arr.world_positions(np.zeros((2, 2)), np.zeros(3))


class TestPairs:
    def test_pair_count(self):
        assert len(all_pairs(linear_array(3))) == 3
        assert len(all_pairs(hexagonal_array())) == 15

    def test_hexagon_supports_12_directions(self):
        dirs = supported_directions(hexagonal_array())
        assert len(dirs) == 12
        degs = np.sort(np.rad2deg(dirs))
        np.testing.assert_allclose(np.diff(degs), 30.0, atol=1e-6)

    def test_linear_supports_2_directions(self):
        dirs = supported_directions(linear_array(3))
        assert len(dirs) == 2

    def test_square_supports_8_directions(self):
        dirs = supported_directions(square_array())
        assert len(dirs) == 8

    def test_heading_sign_convention(self):
        pair = all_pairs(linear_array(2))[0]
        # Ray 0 -> 1 points along +x.
        assert pair.heading(+1) == pytest.approx(0.0, abs=1e-12)
        assert abs(pair.heading(-1)) == pytest.approx(np.pi, abs=1e-12)

    def test_heading_with_orientation(self):
        pair = all_pairs(linear_array(2))[0]
        assert pair.heading(+1, orientation=np.pi / 2) == pytest.approx(np.pi / 2)


class TestParallelGroups:
    def test_linear_array_groups(self):
        groups = parallel_groups(linear_array(3))
        sizes = sorted(len(g) for g in groups)
        # (0,1) and (1,2) share separation and axis; (0,2) differs.
        assert sizes == [1, 2]

    def test_hexagon_group_structure(self):
        groups = parallel_groups(hexagonal_array())
        sizes = sorted(len(g) for g in groups)
        # 3 diameter singletons + 6 groups of two (adjacent + next-adjacent).
        assert sizes == [1, 1, 1, 2, 2, 2, 2, 2, 2]

    def test_groups_share_separation_and_axis(self):
        for group in parallel_groups(hexagonal_array()):
            ref = group[0]
            for pair in group[1:]:
                assert pair.separation == pytest.approx(ref.separation, rel=1e-6)
                delta = np.angle(np.exp(1j * (pair.axis_angle - ref.axis_angle)))
                assert abs(delta) < 1e-6

    def test_groups_cover_all_pairs(self):
        arr = hexagonal_array()
        groups = parallel_groups(arr)
        seen = {frozenset((p.i, p.j)) for g in groups for p in g}
        expected = {frozenset((p.i, p.j)) for p in all_pairs(arr)}
        assert seen == expected


class TestRing:
    def test_ring_pair_count(self):
        assert len(adjacent_ring_pairs(hexagonal_array())) == 6
        assert len(adjacent_ring_pairs(square_array())) == 4

    def test_ring_requires_circular(self):
        with pytest.raises(ValueError):
            adjacent_ring_pairs(linear_array(3))

    def test_ring_pairs_are_adjacent(self):
        arr = hexagonal_array()
        for pair in adjacent_ring_pairs(arr):
            assert pair.separation == pytest.approx(HALF_WAVELENGTH, rel=1e-9)

    def test_arc_separation_hexagon(self):
        """Arc between adjacent hexagon antennas is (π/3)·Δd (§4.4)."""
        arr = hexagonal_array()
        ring = adjacent_ring_pairs(arr)
        arc = arc_separation(arr, ring[0].i, ring[0].j)
        assert arc == pytest.approx(np.pi / 3 * HALF_WAVELENGTH, rel=1e-9)

    def test_arc_separation_requires_circular(self):
        with pytest.raises(ValueError):
            arc_separation(linear_array(3), 0, 1)


class TestBestPair:
    def test_exact_axis(self):
        arr = hexagonal_array()
        pair, sign = best_pair_for_direction(arr, 0.0)
        assert pair.heading(sign) == pytest.approx(0.0, abs=1e-9)

    def test_quantization_error_bounded(self):
        arr = hexagonal_array()
        for direction in np.deg2rad(np.arange(-180, 180, 7)):
            pair, sign = best_pair_for_direction(arr, float(direction))
            err = abs(np.angle(np.exp(1j * (pair.heading(sign) - direction))))
            assert err <= np.deg2rad(15.0) + 1e-9
