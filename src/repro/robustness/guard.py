"""Input guarding for CSI ingestion: validate, repair, or reject.

The RIM kernels assume well-formed input — complex CSI of the right shape,
strictly increasing timestamps, a live signal on every RX chain.  Real
ingestion violates all of that (see :mod:`repro.robustness.faults`), so
both estimators run their input through a guard first:

* :func:`guard_trace` — batch: checks and (policy permitting) repairs a
  whole :class:`~repro.channel.sampler.CsiTrace` before ``Rim.process``.
* :class:`StreamGuard` — online: admits packets one at a time in front of
  ``StreamingRim.push``, so a block buffer is monotonic by construction.

Policies:

* ``"raise"``  — any fault raises :class:`GuardError`; pristine pipelines
  that would rather crash loudly than estimate from bad data.
* ``"drop"``   — offending packets are discarded; dead chains are masked.
* ``"repair"`` — best-effort recovery: reordered packets are sorted back,
  duplicates deduplicated, truncated packets converted to clean losses,
  drifted clocks resampled onto the nominal grid, dead chains masked.

Every action is counted in a :class:`GuardReport` so the health telemetry
(:mod:`repro.robustness.health`) can expose what the guard did.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.sampler import CsiTrace
from repro.motionsim.trajectory import Trajectory

logger = logging.getLogger(__name__)

POLICIES = ("off", "raise", "drop", "repair")


class GuardError(ValueError):
    """A fault the guard was configured not to tolerate."""


@dataclass
class GuardReport:
    """What the guard saw and did to one trace (or one stream window).

    Attributes:
        policy: The guard policy that produced this report.
        n_input: Packets presented to the guard.
        n_output: Packets surviving it.
        duplicates_dropped: Packets removed for carrying a repeated timestamp.
        reordered_repaired: Packets moved back into timestamp order.
        dropped_nonmonotonic: Packets discarded for violating monotonicity
            (``drop`` policy, or stream-mode repair where sorting is
            impossible).
        nonfinite_timestamps: Packets with NaN/inf timestamps removed.
        truncated_packets: Partially corrupt packets converted to losses.
        clock_resampled: True when timestamps were snapped to the nominal grid.
        drift_estimate: Fractional clock drift measured against nominal.
        dead_chains: RX chains below the liveness floor, masked out.
        chain_liveness: (n_rx,) fraction of finite packets per chain.
        loss_rate: Lost-slot fraction over the *live* chains only (a dead
            chain is reported via ``dead_chains``, not folded in here).
    """

    policy: str
    n_input: int
    n_output: int
    duplicates_dropped: int = 0
    reordered_repaired: int = 0
    dropped_nonmonotonic: int = 0
    nonfinite_timestamps: int = 0
    truncated_packets: int = 0
    clock_resampled: bool = False
    drift_estimate: float = 0.0
    dead_chains: List[int] = field(default_factory=list)
    chain_liveness: Optional[np.ndarray] = None
    loss_rate: float = 0.0

    def repairs(self) -> Dict[str, int]:
        """Nonzero repair counters, for telemetry."""
        counters = {
            "duplicates_dropped": self.duplicates_dropped,
            "reordered_repaired": self.reordered_repaired,
            "dropped_nonmonotonic": self.dropped_nonmonotonic,
            "nonfinite_timestamps": self.nonfinite_timestamps,
            "truncated_packets": self.truncated_packets,
            "clock_resampled": int(self.clock_resampled),
        }
        return {k: v for k, v in counters.items() if v}


def guard_trace(
    trace: CsiTrace,
    policy: str = "repair",
    min_chain_liveness: float = 0.2,
    max_clock_drift: float = 0.01,
    nominal_rate: Optional[float] = None,
) -> Tuple[CsiTrace, GuardReport]:
    """Validate and (policy permitting) repair a CSI trace.

    Args:
        trace: The possibly faulty trace.
        policy: ``"raise"``, ``"drop"``, or ``"repair"`` (``"off"`` returns
            the trace untouched with an empty report).
        min_chain_liveness: An RX chain with a smaller fraction of finite
            packets is declared dead and fully masked.
        max_clock_drift: Fractional deviation of the median packet interval
            from nominal beyond which timestamps are resampled.
        nominal_rate: Nominal packet rate, Hz; defaults to the trace
            trajectory's rate.

    Returns:
        ``(guarded_trace, report)``.  Under ``repair``/``drop`` the
        returned trace may be shorter than the input (duplicates and
        cripples removed); its ground-truth trajectory is re-interpolated
        onto the surviving timestamps so evaluation still works.

    Raises:
        GuardError: Under ``policy="raise"`` for any detected fault, and
            under every policy for malformed tensors (wrong rank).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown guard policy {policy!r}; want one of {POLICIES}")
    data = np.asarray(trace.data)
    times = np.asarray(trace.times, dtype=np.float64)
    if data.ndim != 4:
        raise GuardError(f"CSI must be (T, n_rx, n_tx, S), got {data.shape}")
    if times.shape != (data.shape[0],):
        raise GuardError(
            f"times must be ({data.shape[0]},), got {times.shape}"
        )
    report = GuardReport(policy=policy, n_input=data.shape[0], n_output=data.shape[0])
    if policy == "off":
        return trace, report
    if not np.issubdtype(data.dtype, np.complexfloating):
        if policy == "raise":
            raise GuardError(f"CSI must be complex, got dtype {data.dtype}")
        data = data.astype(np.complex64)

    mutated = data is not trace.data

    # -- timestamps: finite, strictly increasing, deduplicated ------------
    finite_ts = np.isfinite(times)
    if not finite_ts.all():
        report.nonfinite_timestamps = int(np.count_nonzero(~finite_ts))
        if policy == "raise":
            raise GuardError(
                f"{report.nonfinite_timestamps} packets carry non-finite timestamps"
            )
        data, times = data[finite_ts], times[finite_ts]
        mutated = True

    if times.size and not np.all(np.diff(times) > 0):
        if policy == "raise":
            raise GuardError("timestamps are not strictly increasing")
        if policy == "repair":
            order = np.argsort(times, kind="stable")
            report.reordered_repaired = int(np.count_nonzero(order != np.arange(times.size)))
            data, times = data[order], times[order]
            keep = np.concatenate([[True], np.diff(times) > 1e-12])
            report.duplicates_dropped = int(np.count_nonzero(~keep))
            data, times = data[keep], times[keep]
        else:  # drop: keep the increasing subsequence as packets arrive
            keep = np.zeros(times.size, dtype=bool)
            last = -np.inf
            for k in range(times.size):
                if times[k] > last:
                    keep[k] = True
                    last = times[k]
            dropped = int(np.count_nonzero(~keep))
            report.dropped_nonmonotonic = dropped
            data, times = data[keep], times[keep]
        mutated = True

    # -- truncated packets: partial tone corruption -> clean loss ---------
    nan_tones = np.isnan(data.real) | np.isnan(data.imag)
    slot_nan = nan_tones.any(axis=(2, 3))
    slot_all_nan = nan_tones.all(axis=(2, 3))
    truncated = slot_nan & ~slot_all_nan
    if truncated.any():
        report.truncated_packets = int(np.count_nonzero(truncated.any(axis=1)))
        if policy == "raise":
            raise GuardError(
                f"{report.truncated_packets} packets are partially corrupt (truncated)"
            )
        if policy == "drop":
            keep = ~truncated.any(axis=1)
            data, times = data[keep], times[keep]
            slot_all_nan = slot_all_nan[keep]
        else:
            data = np.array(data, copy=True)
            data[truncated] = np.nan + 1j * np.nan
            slot_all_nan = slot_all_nan | truncated
        mutated = True

    # -- chain liveness: detect and mask dead RX chains -------------------
    t = data.shape[0]
    if t:
        liveness = 1.0 - slot_all_nan.mean(axis=0)
    else:
        liveness = np.ones(data.shape[1])
    report.chain_liveness = liveness
    dead = [int(c) for c in np.nonzero(liveness < min_chain_liveness)[0]]
    report.dead_chains = dead
    if dead:
        if policy == "raise":
            raise GuardError(
                f"RX chains {dead} are dead "
                f"(liveness {[round(float(liveness[c]), 3) for c in dead]} "
                f"< {min_chain_liveness})"
            )
        if not slot_all_nan[:, dead].all():
            data = np.array(data, copy=True)
            data[:, dead] = np.nan + 1j * np.nan
            mutated = True
    live = [c for c in range(data.shape[1]) if c not in dead]
    if live and t:
        report.loss_rate = float(slot_all_nan[:, live].mean())
    elif t:
        report.loss_rate = 1.0

    # -- clock drift: resample onto the nominal grid ----------------------
    if t >= 2:
        if nominal_rate is None and trace.trajectory.n_samples >= 2:
            nominal_rate = trace.trajectory.sampling_rate
        if nominal_rate and nominal_rate > 0:
            median_dt = float(np.median(np.diff(times)))
            drift = median_dt * nominal_rate - 1.0
            report.drift_estimate = drift
            if abs(drift) > max_clock_drift:
                if policy == "raise":
                    raise GuardError(
                        f"sampling clock drifted {drift * 1e6:.0f} ppm from the "
                        f"nominal {nominal_rate:g} Hz grid"
                    )
                times = times[0] + np.arange(t) / nominal_rate
                report.clock_resampled = True
                mutated = True

    report.n_output = t
    if not mutated:
        return trace, report

    logger.info(
        "guard[%s]: %d -> %d packets, repairs=%s, dead_chains=%s",
        policy,
        report.n_input,
        report.n_output,
        report.repairs(),
        report.dead_chains,
    )
    trajectory = _project_trajectory(trace.trajectory, times)
    guarded = replace(trace, data=data, times=times, trajectory=trajectory)
    return guarded, report


class StreamGuard:
    """Per-packet admission control in front of ``StreamingRim.push``.

    Unlike the batch guard, a stream cannot be sorted — a late packet's
    slot has already been emitted — so ``repair`` at the stream level means
    *drop* late/duplicate packets and *mask* truncated ones, keeping the
    admitted sequence strictly monotonic.

    Args:
        policy: ``"raise"``, ``"drop"``, or ``"repair"``.
        epsilon: Timestamps within this of the previous one count as
            duplicates rather than reordering.
    """

    def __init__(self, policy: str = "repair", epsilon: float = 1e-9):
        if policy not in POLICIES:
            raise ValueError(f"unknown guard policy {policy!r}; want one of {POLICIES}")
        self.policy = policy
        self.epsilon = float(epsilon)
        self.last_timestamp = -np.inf
        self._counters: Dict[str, int] = {
            "duplicates_dropped": 0,
            "dropped_nonmonotonic": 0,
            "nonfinite_timestamps": 0,
            "truncated_packets": 0,
        }

    def admit(
        self, packet: np.ndarray, timestamp: float
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Check one packet; return ``(packet, timestamp)`` or None if rejected.

        Raises:
            GuardError: Under ``policy="raise"`` for any fault.
        """
        if self.policy == "off":
            self.last_timestamp = timestamp
            return packet, timestamp
        if not np.isfinite(timestamp):
            return self._reject("nonfinite_timestamps", "non-finite timestamp")
        if timestamp <= self.last_timestamp:
            if timestamp > self.last_timestamp - self.epsilon:
                return self._reject(
                    "duplicates_dropped", f"duplicate timestamp {timestamp!r}"
                )
            return self._reject(
                "dropped_nonmonotonic",
                f"timestamp {timestamp!r} precedes {self.last_timestamp!r}",
            )
        packet = np.asarray(packet)
        if not np.issubdtype(packet.dtype, np.complexfloating):
            if self.policy == "raise":
                raise GuardError(f"packet must be complex, got dtype {packet.dtype}")
            packet = packet.astype(np.complex64)
        nan_tones = np.isnan(packet.real) | np.isnan(packet.imag)
        partial = nan_tones.any(axis=(1, 2)) & ~nan_tones.all(axis=(1, 2))
        if partial.any():
            self._counters["truncated_packets"] += 1
            if self.policy == "raise":
                raise GuardError("packet is partially corrupt (truncated)")
            packet = np.array(packet, copy=True)
            packet[partial] = np.nan + 1j * np.nan
        self.last_timestamp = float(timestamp)
        return packet, float(timestamp)

    def _reject(self, counter: str, message: str) -> None:
        self._counters[counter] += 1
        if self.policy == "raise":
            raise GuardError(message)
        logger.debug("stream guard rejected packet: %s", message)
        return None

    def drain_counters(self) -> Dict[str, int]:
        """Return and reset the repair counters (per-block telemetry)."""
        out = {k: v for k, v in self._counters.items() if v}
        for k in self._counters:
            self._counters[k] = 0
        return out

    def state_dict(self) -> Dict[str, object]:
        """Serializable admission state (checkpoint/resume support).

        Captures the monotonicity watermark and the not-yet-drained repair
        counters, so a resumed stream rejects exactly the packets the
        uninterrupted one would and its next health report carries the
        same counts.
        """
        return {
            "policy": self.policy,
            "last_timestamp": float(self.last_timestamp),
            "counters": dict(self._counters),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (policy must match)."""
        if state.get("policy") != self.policy:
            raise ValueError(
                f"checkpoint guard policy {state.get('policy')!r} does not "
                f"match this stream's {self.policy!r}"
            )
        self.last_timestamp = float(state["last_timestamp"])  # type: ignore[arg-type]
        for key in self._counters:
            self._counters[key] = int(state["counters"].get(key, 0))  # type: ignore[union-attr]


def _project_trajectory(trajectory: Trajectory, times: np.ndarray) -> Trajectory:
    """Re-interpolate ground truth onto the guarded timestamps.

    The guard never invents motion: positions and orientations are linearly
    interpolated (and edge-clamped) at the surviving packet times, so
    evaluation against truth remains meaningful after repairs.
    """
    src = trajectory.times
    if times.size == trajectory.n_samples and np.array_equal(src, times):
        return trajectory
    if times.size < 2 or trajectory.n_samples < 2:
        return trajectory
    positions = np.column_stack(
        [np.interp(times, src, trajectory.positions[:, k]) for k in range(2)]
    )
    orientations = np.interp(times, src, trajectory.orientations)
    return Trajectory(times=times, positions=positions, orientations=orientations)
