"""Bench: Fig. 12 — heading-direction accuracy (paper: 6.1° mean)."""

from repro.eval.experiments import run_fig12_heading_accuracy
from repro.eval.report import print_report


def test_fig12_heading_accuracy(benchmark, quick):
    result = benchmark.pedantic(
        run_fig12_heading_accuracy, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 12 — heading direction accuracy", result)
    m = result["measured"]
    # Shape: errors bounded by the 30°-grid quantization; the majority of
    # directions resolve within 10-15°.
    assert m["mean_error_deg"] < 15.0
    assert m["within_10deg_fraction"] > 0.5
