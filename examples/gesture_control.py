#!/usr/bin/env python
"""Gesture control with a WiFi pointer (the Fig. 19 application).

An L-shaped 3-antenna "pointer" senses out-and-back hand gestures in four
directions.  The script simulates a user performing a gesture sequence and
shows what the recognizer saw.

Run:  python examples/gesture_control.py
"""

import numpy as np

from repro import Rim, RimConfig, l_shaped_array
from repro.apps.gesture import GestureRecognizer
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.motionsim.gestures import GESTURES, GestureProfile, gesture_trajectory

ARROWS = {"left": "<-", "right": "->", "up": "/\\", "down": "\\/"}


def main():
    recognizer = GestureRecognizer()
    rim = Rim(RimConfig(max_lag=60))
    pointer = l_shaped_array()
    profile = GestureProfile(amplitude=0.35, speed=0.6)

    sequence = ["right", "right", "up", "left", "down", "up", "left", "right"]
    print("user performs:", " ".join(f"{g}{ARROWS[g]}" for g in sequence))
    print()

    hits = 0
    for k, gesture in enumerate(sequence):
        bed = make_testbed(seed=200 + k)
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        trajectory = gesture_trajectory(
            gesture, start=spot, profile=profile, rng=bed.rng
        )
        trace = bed.sampler.sample(trajectory, pointer)
        detections = recognizer.recognize(rim.process(trace))

        if detections:
            got = detections[0].gesture
            heading = np.rad2deg(detections[0].outward_heading)
            status = "OK " if got == gesture else "WRONG"
            hits += got == gesture
            print(f"  #{k + 1}: {gesture:>5} -> detected {got:>5} "
                  f"(outward {heading:+6.1f} deg)  {status}")
        else:
            print(f"  #{k + 1}: {gesture:>5} -> missed (repeat the gesture)")

    print(f"\nrecognized {hits}/{len(sequence)} "
          f"(paper: 96.25% detection, 0 misclassifications among detected)")


if __name__ == "__main__":
    main()
