"""Bench: Fig. 13 — rotating-angle accuracy, RIM vs gyroscope.

Paper: ~30.1° median error for RIM; the gyroscope wins this comparison.
"""

from repro.eval.experiments import run_fig13_rotation_accuracy
from repro.eval.report import print_report


def test_fig13_rotation_accuracy(benchmark, quick):
    result = benchmark.pedantic(
        run_fig13_rotation_accuracy, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 13 — rotating angle accuracy", result)
    m = result["measured"]
    # Shape: coarse but functional rotation sensing; gyro is better, as in
    # the paper.
    assert m["rim_median_error_deg"] < 60.0
    assert m["gyro_beats_rim"]
