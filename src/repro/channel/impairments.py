"""Hardware impairments of commodity WiFi CSI.

The paper (§3.2) lists the phase offsets that plague COTS CSI:

* **Initial phase offset** from the PLL — a per-packet random common phase.
  TRRS is immune to it because Eqn. 2 takes a magnitude.
* **CFO** — residual carrier frequency offset; over a packet it contributes
  another common phase term, drifting over time.
* **SFO / STO** — sampling frequency and symbol timing offsets; both produce
  a phase *slope* across subcarriers that changes packet to packet.  RIM
  removes it with the linear sanitation of [13] (``repro.core.sanitize``).

On top of the phase offsets we model per-antenna hardware heterogeneity
(frequency-dependent gain ripple, fixed over time but distinct per RX chain
— the reason cross-antenna TRRS tops out well below 1.0 in Fig. 4b),
additive white Gaussian noise, and packet loss (lost packets surface as NaN
rows, the paper's "null CSI").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.ofdm import SubcarrierGrid


@dataclass
class ImpairmentConfig:
    """Knobs for the CSI impairment pipeline.

    Attributes:
        snr_db: Per-tone SNR of the additive noise (relative to the mean CFR
            power of the trace).  ``None`` disables noise.
        timing_jitter_std: Std-dev of the per-packet timing offset, in units
            of the OFDM sample period.  Produces the STO phase slope.
        timing_drift_per_packet: Deterministic drift of the timing offset per
            packet (SFO accumulation), same units.
        cfo_phase_std: Std-dev of the per-packet common phase random walk
            increment, radians (CFO residual after coarse correction).
        initial_phase: If True, add an i.i.d. uniform common phase per packet
            per RX chain (PLL initial phase).
        antenna_ripple: Relative amplitude of the per-antenna frequency gain
            ripple (0 disables hardware heterogeneity).
        ripple_components: Number of sinusoidal components in the ripple.
        packet_loss_rate: i.i.d. probability that a packet is lost on a NIC.
        loss_burstiness: If >0, losses follow a Gilbert-Elliott chain whose
            bad state has this mean burst length (packets).
    """

    snr_db: Optional[float] = 25.0
    timing_jitter_std: float = 0.1
    timing_drift_per_packet: float = 1e-4
    cfo_phase_std: float = 0.05
    initial_phase: bool = True
    antenna_ripple: float = 0.15
    ripple_components: int = 4
    packet_loss_rate: float = 0.0
    loss_burstiness: float = 0.0

    def __post_init__(self) -> None:
        if self.timing_jitter_std < 0:
            raise ValueError(
                f"timing_jitter_std must be >= 0, got {self.timing_jitter_std}"
            )
        if self.cfo_phase_std < 0:
            raise ValueError(f"cfo_phase_std must be >= 0, got {self.cfo_phase_std}")
        if self.antenna_ripple < 0:
            raise ValueError(f"antenna_ripple must be >= 0, got {self.antenna_ripple}")
        if self.ripple_components < 1:
            raise ValueError(
                f"ripple_components must be >= 1, got {self.ripple_components}"
            )
        if not 0.0 <= self.packet_loss_rate < 1.0:
            raise ValueError(
                f"packet_loss_rate must be a probability in [0, 1), "
                f"got {self.packet_loss_rate}"
            )
        if self.loss_burstiness < 0:
            raise ValueError(
                f"loss_burstiness must be >= 0 (mean burst packets), "
                f"got {self.loss_burstiness}"
            )


def clean() -> ImpairmentConfig:
    """An impairment config that leaves the CSI untouched."""
    return ImpairmentConfig(
        snr_db=None,
        timing_jitter_std=0.0,
        timing_drift_per_packet=0.0,
        cfo_phase_std=0.0,
        initial_phase=False,
        antenna_ripple=0.0,
        packet_loss_rate=0.0,
    )


class CsiImpairer:
    """Applies the impairment pipeline to an ideal CSI tensor.

    One ``CsiImpairer`` corresponds to one receiver NIC: timing offsets and
    CFO are common to all RX chains of a NIC (they share a clock), while the
    initial PLL phase and the gain ripple are drawn per RX chain.
    """

    def __init__(
        self,
        config: ImpairmentConfig,
        grid: SubcarrierGrid,
        n_rx: int,
        rng: np.random.Generator = None,
    ):
        self.config = config
        self.grid = grid
        self.n_rx = int(n_rx)
        self.rng = rng or np.random.default_rng()
        self._ripple = self._draw_ripple()

    def _draw_ripple(self) -> np.ndarray:
        """Fixed per-RX-chain complex gain over tones, shape (n_rx, S)."""
        s = self.grid.n_subcarriers
        gains = np.ones((self.n_rx, s), dtype=np.complex128)
        amp = self.config.antenna_ripple
        if amp <= 0.0:
            return gains
        x = np.linspace(0.0, 1.0, s)
        for a in range(self.n_rx):
            mag = np.ones(s)
            phase = np.zeros(s)
            for _ in range(max(1, self.config.ripple_components)):
                freq = self.rng.uniform(0.5, 3.0)
                mag += amp * self.rng.standard_normal() * np.cos(
                    2 * np.pi * freq * x + self.rng.uniform(0, 2 * np.pi)
                )
                phase += amp * self.rng.standard_normal() * np.sin(
                    2 * np.pi * freq * x + self.rng.uniform(0, 2 * np.pi)
                )
            gains[a] = np.clip(mag, 0.1, None) * np.exp(1j * phase)
        return gains

    def apply(self, csi: np.ndarray) -> np.ndarray:
        """Impair an ideal CSI tensor.

        Args:
            csi: (T, n_rx, n_tx, S) ideal CFRs for this NIC.

        Returns:
            Impaired tensor of the same shape (complex64); lost packets are
            NaN across all their entries.
        """
        csi = np.asarray(csi)
        if csi.ndim != 4:
            raise ValueError(f"expected (T, n_rx, n_tx, S) CSI, got {csi.shape}")
        t, n_rx, _, s = csi.shape
        if n_rx != self.n_rx:
            raise ValueError(f"impairer built for {self.n_rx} RX chains, got {n_rx}")
        if s != self.grid.n_subcarriers:
            raise ValueError(
                f"CSI has {s} tones but grid has {self.grid.n_subcarriers}"
            )
        cfg = self.config
        out = csi.astype(np.complex64, copy=True)

        # Per-RX-chain fixed gain ripple (hardware heterogeneity).
        out *= self._ripple.astype(np.complex64)[None, :, None, :]

        # Timing offset -> phase slope across tones (common to the NIC).
        if cfg.timing_jitter_std > 0.0 or cfg.timing_drift_per_packet != 0.0:
            jitter = (
                self.rng.normal(0.0, cfg.timing_jitter_std, t)
                if cfg.timing_jitter_std > 0.0
                else np.zeros(t)
            )
            drift = cfg.timing_drift_per_packet * np.arange(t)
            delta = jitter + drift
            tone_idx = self.grid.index_array
            fft_size = self.grid.bandwidth / self.grid.spacing
            slope_phase = -2.0 * np.pi * np.outer(delta, tone_idx) / fft_size
            out *= np.exp(1j * slope_phase).astype(np.complex64)[:, None, None, :]

        # CFO residual: common-phase random walk shared by the NIC.
        if cfg.cfo_phase_std > 0.0:
            walk = np.cumsum(self.rng.normal(0.0, cfg.cfo_phase_std, t))
            out *= np.exp(1j * walk).astype(np.complex64)[:, None, None, None]

        # PLL initial phase: i.i.d. per packet per RX chain.
        if cfg.initial_phase:
            phases = self.rng.uniform(0.0, 2 * np.pi, (t, n_rx))
            out *= np.exp(1j * phases).astype(np.complex64)[:, :, None, None]

        # Additive noise at the configured SNR.
        if cfg.snr_db is not None:
            signal_power = float(np.mean(np.abs(csi) ** 2))
            noise_power = signal_power / (10.0 ** (cfg.snr_db / 10.0))
            scale = np.sqrt(noise_power / 2.0)
            noise = scale * (
                self.rng.standard_normal(out.shape) + 1j * self.rng.standard_normal(out.shape)
            )
            out += noise.astype(np.complex64)

        # Packet loss: NaN out whole packets.
        lost = self._loss_mask(t)
        if lost.any():
            out[lost] = np.nan + 1j * np.nan
        return out

    def _loss_mask(self, t: int) -> np.ndarray:
        cfg = self.config
        if cfg.packet_loss_rate <= 0.0:
            return np.zeros(t, dtype=bool)
        if cfg.loss_burstiness <= 1.0:
            return self.rng.uniform(size=t) < cfg.packet_loss_rate
        # Gilbert-Elliott: stationary loss probability = packet_loss_rate,
        # mean bad-burst length = loss_burstiness.
        p_exit_bad = 1.0 / cfg.loss_burstiness
        p_enter_bad = (
            cfg.packet_loss_rate * p_exit_bad / max(1e-9, 1.0 - cfg.packet_loss_rate)
        )
        mask = np.zeros(t, dtype=bool)
        bad = False
        for i in range(t):
            if bad:
                mask[i] = True
                bad = self.rng.uniform() >= p_exit_bad
            else:
                bad = self.rng.uniform() < p_enter_bad
                mask[i] = bad
        return mask
