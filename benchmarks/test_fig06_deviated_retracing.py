"""Bench: Fig. 6 — antenna alignment under deviated retracing."""

from repro.eval.experiments import run_fig6_deviated_retracing
from repro.eval.report import print_report


def test_fig6_deviated_retracing(benchmark, quick):
    result = benchmark.pedantic(
        run_fig6_deviated_retracing, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 6 — deviated retracing", result)
    prom = result["measured"]["prominence_by_deviation"]
    # Shape: peaks remain evident at the paper's 15° tolerance and
    # collapse well beyond it.
    assert prom[15.0] > 0.05
    assert prom[45.0] < 0.6 * prom[0.0]
