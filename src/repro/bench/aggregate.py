"""Run-table aggregation: per-cell repetition stats, merged histograms,
the deterministic table digest, and cross-table comparison.

All math here is deliberately dependency-light and deterministic: the
same per-repetition records always produce the same row, and the table
digest covers only replay-deterministic fields (cell identity, seed,
workload size, and — for ``block``-backpressure cells — update counts
and total distance), so two runs of the same spec with the same seed
produce bit-identical digests even though wall-clock columns differ.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.spec import Cell, BenchError

#: Run-table payload schema tag (see :func:`validate_run_table`).
TABLE_SCHEMA = "rim-bench-table/v1"

#: Latency quantiles every row reports, as (field suffix, q) pairs.
LATENCY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / sample stdev / fractional spread of repetitions."""
    vals = [float(v) for v in values]
    if not vals:
        raise BenchError("cannot summarize an empty repetition list")
    n = len(vals)
    mean = sum(vals) / n
    if n > 1:
        stdev = math.sqrt(sum((v - mean) ** 2 for v in vals) / (n - 1))
    else:
        stdev = 0.0
    vmin, vmax = min(vals), max(vals)
    return {
        "mean": mean,
        "min": vmin,
        "max": vmax,
        "stdev": stdev,
        "spread_frac": (vmax - vmin) / mean if mean > 0 else 0.0,
    }


def merge_histograms(
    snapshots: Sequence[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Merge histogram snapshots (same bounds) by summing buckets.

    ``None`` entries (a repetition that recorded no latency) are
    skipped; all-``None`` merges to ``None``.  Mismatched bucket bounds
    are a layout bug, not noise, so they raise.
    """
    live = [s for s in snapshots if s is not None and s.get("count")]
    if not live:
        return None
    bounds = [float(b) for b in live[0]["bounds"]]
    merged = {
        "type": "histogram",
        "bounds": bounds,
        "counts": [0] * len(live[0]["counts"]),
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
    }
    for snap in live:
        if [float(b) for b in snap["bounds"]] != bounds:
            raise BenchError(
                f"cannot merge histograms with different bounds: "
                f"{snap['bounds']} vs {bounds}"
            )
        merged["counts"] = [
            a + int(b) for a, b in zip(merged["counts"], snap["counts"])
        ]
        merged["count"] += int(snap["count"])
        merged["sum"] += float(snap["sum"])
        for end, pick in (("min", min), ("max", max)):
            if snap.get(end) is not None:
                have = merged[end]
                merged[end] = (
                    float(snap[end]) if have is None else pick(have, float(snap[end]))
                )
    return merged


def percentile_from_snapshot(
    snapshot: Optional[Dict[str, Any]], q: float
) -> Optional[float]:
    """Approximate q-quantile from a histogram snapshot.

    Mirrors :meth:`repro.obs.metrics.Histogram.percentile` (bucket upper
    bound clamped by the observed max) so a run table computed from
    exported snapshots agrees with the live registry.
    """
    if not 0.0 <= q <= 1.0:
        raise BenchError(f"q must be in [0, 1], got {q}")
    if not snapshot or not snapshot.get("count"):
        return None
    bounds = snapshot["bounds"]
    vmax = float(snapshot["max"])
    target = q * snapshot["count"]
    running = 0
    for k, n in enumerate(snapshot["counts"]):
        running += int(n)
        if running >= target and n:
            if k < len(bounds):
                return min(float(bounds[k]), vmax)
            return vmax
    return vmax


def build_row(
    cell: Cell, seed: int, reps: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Aggregate one cell's measured repetitions into a run-table row.

    Deterministic cells must agree across repetitions on update count
    and total distance — a disagreement means the serving stack broke
    its replay-determinism guarantee, which is a failure worth failing
    the bench for, not averaging away.
    """
    if not reps:
        raise BenchError(f"cell {cell.key} has no measured repetitions")
    first = reps[0]
    if cell.deterministic:
        for k, rep in enumerate(reps[1:], start=2):
            if rep["n_updates"] != first["n_updates"] or not math.isclose(
                rep["total_distance_m"], first["total_distance_m"],
                rel_tol=0.0, abs_tol=0.0,
            ):
                raise BenchError(
                    f"cell {cell.key} is deterministic but repetition {k} "
                    f"diverged: updates {rep['n_updates']} vs "
                    f"{first['n_updates']}, distance "
                    f"{rep['total_distance_m']!r} vs "
                    f"{first['total_distance_m']!r}"
                )
    latency = merge_histograms([rep.get("latency") for rep in reps])
    row: Dict[str, Any] = {
        "cell": cell.to_dict(),
        "key": cell.key,
        "seed": int(seed),
        "deterministic": cell.deterministic,
        "n_sessions": int(first["n_sessions"]),
        "total_samples": int(first["total_samples"]),
        "n_updates": int(first["n_updates"]),
        "total_distance_m": float(first["total_distance_m"]),
        "health": dict(first["health"]),
        "reps": [
            {
                "wall_s": float(rep["wall_s"]),
                "sessions_per_second": float(rep["sessions_per_second"]),
                "samples_per_second": float(rep["samples_per_second"]),
                "n_updates": int(rep["n_updates"]),
                "total_distance_m": float(rep["total_distance_m"]),
                "health": dict(rep["health"]),
            }
            for rep in reps
        ],
        "wall_s": summarize([rep["wall_s"] for rep in reps]),
        "sessions_per_second": summarize(
            [rep["sessions_per_second"] for rep in reps]
        ),
        "samples_per_second": summarize(
            [rep["samples_per_second"] for rep in reps]
        ),
        "latency": latency,
    }
    for suffix, q in LATENCY_QUANTILES:
        row[f"latency_{suffix}_s"] = percentile_from_snapshot(latency, q)
    return row


def _digest_projection(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    proj = []
    for row in rows:
        entry: Dict[str, Any] = {
            "key": row["key"],
            "seed": int(row["seed"]),
            "n_sessions": int(row["n_sessions"]),
            "total_samples": int(row["total_samples"]),
        }
        if row.get("deterministic"):
            entry["n_updates"] = int(row["n_updates"])
            # repr() is the shortest round-trip form: bit-identical
            # floats digest identically, anything else does not.
            entry["total_distance_m"] = repr(float(row["total_distance_m"]))
        proj.append(entry)
    return proj


def table_digest(rows: Sequence[Dict[str, Any]]) -> str:
    """SHA-256 over the replay-deterministic projection of the rows."""
    canonical = json.dumps(
        _digest_projection(rows), sort_keys=True, separators=(",", ":")
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def validate_run_table(payload: Dict[str, Any]) -> None:
    """Assert the structural schema of a run-table payload.

    Structure and digest consistency only — never timing values, so CI
    stays hardware-independent.

    Raises:
        BenchError: On schema drift, a malformed row, or a digest that
            does not match the rows it claims to cover.
    """
    if payload.get("schema") != TABLE_SCHEMA:
        raise BenchError(
            f"schema mismatch: want {TABLE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        raise BenchError("run table has no rows")
    for row in rows:
        for field in ("cell", "key", "seed", "reps", "health"):
            if field not in row:
                raise BenchError(f"row {row.get('key')!r} lacks {field!r}")
        if not isinstance(row["reps"], list) or not row["reps"]:
            raise BenchError(f"row {row['key']!r} has no repetitions")
        for rep in row["reps"]:
            for metric in ("wall_s", "sessions_per_second", "samples_per_second"):
                if not isinstance(rep.get(metric), (int, float)):
                    raise BenchError(f"row {row['key']!r} rep lacks {metric}")
        for metric in ("wall_s", "sessions_per_second", "samples_per_second"):
            stats = row.get(metric)
            if not isinstance(stats, dict) or "mean" not in stats:
                raise BenchError(
                    f"row {row['key']!r} lacks aggregated {metric} stats"
                )
    if payload.get("digest") != table_digest(rows):
        raise BenchError(
            "run-table digest does not match its rows (stale or edited table)"
        )
    capacity = payload.get("capacity")
    if not isinstance(capacity, list):
        raise BenchError("run table lacks the capacity model list")
    for model in capacity:
        fit = model.get("fit")
        if not isinstance(fit, dict) or fit.get("model") not in ("linear", "kneed"):
            raise BenchError(f"capacity entry {model.get('group')!r} lacks a fit")


def compare_tables(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_regression: float = 0.25,
    latency_slack_s: float = 0.25,
) -> List[str]:
    """Cell-by-cell throughput/latency regression check (``bench compare``).

    For every cell key present in both tables, mean sessions/sec may not
    drop by more than the fractional budget, and the merged p95 block
    latency may not grow past the budget plus an absolute slack (block
    latencies are milliseconds-scale; a purely fractional bound would be
    a scheduler-jitter lottery).  A cell present in the old table but
    missing from the new one fails — a silently shrunk matrix is not a
    pass.

    Returns:
        Human-readable failure strings (uniform gate format); empty
        means the comparison passes.
    """
    from repro.bench.gates import format_gate_failure

    old_rows = {row["key"]: row for row in old.get("rows", [])}
    new_rows = {row["key"]: row for row in new.get("rows", [])}
    failures: List[str] = []
    for key in old_rows:
        if key not in new_rows:
            failures.append(
                format_gate_failure(
                    f"bench[{key}].present",
                    measured="missing",
                    baseline="present",
                    budget="matrix may not shrink",
                )
            )
    for key, new_row in sorted(new_rows.items()):
        old_row = old_rows.get(key)
        if old_row is None:
            continue
        old_rate = float(old_row["sessions_per_second"]["mean"])
        new_rate = float(new_row["sessions_per_second"]["mean"])
        if old_rate > 0 and new_rate < old_rate / (1.0 + max_regression):
            failures.append(
                format_gate_failure(
                    f"bench[{key}].sessions_per_second",
                    measured=f"{new_rate:.2f}/s ({new_rate / old_rate - 1.0:+.0%})",
                    baseline=f"{old_rate:.2f}/s",
                    budget=f"-{max_regression / (1.0 + max_regression):.0%}",
                )
            )
        old_p95 = old_row.get("latency_p95_s")
        new_p95 = new_row.get("latency_p95_s")
        if (
            isinstance(old_p95, (int, float))
            and isinstance(new_p95, (int, float))
            and new_p95 > old_p95 * (1.0 + max_regression) + latency_slack_s
        ):
            failures.append(
                format_gate_failure(
                    f"bench[{key}].latency_p95_s",
                    measured=f"{new_p95 * 1e3:.1f} ms",
                    baseline=f"{old_p95 * 1e3:.1f} ms",
                    budget=f"+{max_regression:.0%} "
                    f"plus {latency_slack_s * 1e3:.0f} ms slack",
                )
            )
    return failures
