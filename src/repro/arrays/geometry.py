"""Antenna array geometries (§3.1, Fig. 2, Fig. 3).

An :class:`AntennaArray` holds antenna coordinates in the array's local
frame (meters, array center at the origin) plus the NIC each antenna belongs
to.  The paper's prototypes:

* a 3-antenna **linear** array (one COTS NIC) — distance tracking (§6.2.1);
* a 6-element **hexagonal** array combining two NICs (Fig. 2) — 12 tractable
  directions at 30° resolution;
* an **L-shaped** 3-antenna array (one NIC) — the gesture pointer (§6.3.2);
* square / quadrangular arrays (Fig. 3) for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.channel.constants import HALF_WAVELENGTH


@dataclass(frozen=True)
class AntennaArray:
    """A rigid 2D antenna array.

    Attributes:
        name: Human-readable geometry name.
        local_positions: (m, 2) antenna coordinates in the array frame.
        nic_assignment: (m,) index of the NIC driving each antenna.  Antennas
            on the same NIC share a sampling clock; packet-level (not phase)
            synchronization is assumed across NICs (§5).
        circular: True when the antennas sit on a circle around the array
            center in ring order — required for rotation sensing (§4.4).
    """

    name: str
    local_positions: np.ndarray
    nic_assignment: np.ndarray
    circular: bool = False

    def __post_init__(self) -> None:
        pos = np.asarray(self.local_positions, dtype=np.float64)
        nic = np.asarray(self.nic_assignment, dtype=np.int64)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"local_positions must be (m, 2), got {pos.shape}")
        if nic.shape != (pos.shape[0],):
            raise ValueError("nic_assignment must have one entry per antenna")
        object.__setattr__(self, "local_positions", pos)
        object.__setattr__(self, "nic_assignment", nic)

    @property
    def n_antennas(self) -> int:
        return int(self.local_positions.shape[0])

    @property
    def n_nics(self) -> int:
        return int(self.nic_assignment.max()) + 1

    @property
    def radius(self) -> float:
        """Largest antenna distance from the array center."""
        return float(np.linalg.norm(self.local_positions, axis=1).max())

    def separation(self, i: int, j: int) -> float:
        """Distance between antennas i and j (the Δd of §3.1)."""
        return float(
            np.linalg.norm(self.local_positions[i] - self.local_positions[j])
        )

    def pair_direction(self, i: int, j: int) -> float:
        """Angle (radians, array frame) of the ray from antenna i to j."""
        delta = self.local_positions[j] - self.local_positions[i]
        return float(np.arctan2(delta[1], delta[0]))

    def world_positions(self, centers, orientations) -> np.ndarray:
        """Antenna positions in world coordinates along a trajectory.

        Args:
            centers: (T, 2) array-center positions.
            orientations: (T,) array rotation angles, radians.

        Returns:
            (T, m, 2) world positions of every antenna at every instant.
        """
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        orientations = np.atleast_1d(np.asarray(orientations, dtype=np.float64))
        if centers.shape[0] != orientations.shape[0]:
            raise ValueError("centers and orientations must have equal length")
        cos = np.cos(orientations)
        sin = np.sin(orientations)
        rot = np.empty((centers.shape[0], 2, 2))
        rot[:, 0, 0] = cos
        rot[:, 0, 1] = -sin
        rot[:, 1, 0] = sin
        rot[:, 1, 1] = cos
        rotated = np.einsum("tab,mb->tma", rot, self.local_positions)
        return rotated + centers[:, None, :]


def linear_array(
    n_antennas: int = 3, spacing: float = HALF_WAVELENGTH
) -> AntennaArray:
    """A uniform linear array along the local x-axis (one NIC)."""
    if n_antennas < 2:
        raise ValueError(f"need at least 2 antennas, got {n_antennas}")
    xs = (np.arange(n_antennas) - (n_antennas - 1) / 2.0) * spacing
    pos = np.stack([xs, np.zeros(n_antennas)], axis=1)
    return AntennaArray(
        name=f"linear-{n_antennas}",
        local_positions=pos,
        nic_assignment=np.zeros(n_antennas, dtype=np.int64),
    )


def l_shaped_array(spacing: float = HALF_WAVELENGTH) -> AntennaArray:
    """The 3-antenna "L" used by the gesture pointer (§6.3.2).

    Antenna 0 at the corner, antenna 1 along +x (the horizontal pair 0-1),
    antenna 2 along +y (the vertical pair 0-2).
    """
    pos = np.array([[0.0, 0.0], [spacing, 0.0], [0.0, spacing]])
    pos = pos - pos.mean(axis=0, keepdims=True)
    return AntennaArray(
        name="l-shaped",
        local_positions=pos,
        nic_assignment=np.zeros(3, dtype=np.int64),
    )


def square_array(spacing: float = HALF_WAVELENGTH) -> AntennaArray:
    """Four antennas on the corners of a square (Fig. 3c, 8 directions)."""
    half = spacing / 2.0
    pos = np.array([[-half, -half], [half, -half], [half, half], [-half, half]])
    return AntennaArray(
        name="square",
        local_positions=pos,
        nic_assignment=np.zeros(4, dtype=np.int64),
        circular=True,
    )


def hexagonal_array(spacing: float = HALF_WAVELENGTH) -> AntennaArray:
    """The paper's 6-element hexagonal array (Fig. 2).

    Regular hexagon: the circumradius equals the side length, so adjacent
    antennas are ``spacing`` apart and each sits ``spacing`` from the center.
    Antennas 0-2 belong to NIC 0, antennas 3-5 to NIC 1 (two COTS radios
    placed together; only packet-level sync between them, §5).
    """
    angles = np.deg2rad(90.0 - 60.0 * np.arange(6))
    pos = spacing * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    nic = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
    return AntennaArray(
        name="hexagonal", local_positions=pos, nic_assignment=nic, circular=True
    )


def uniform_circular_array(
    n_antennas: int = 8,
    radius: float = HALF_WAVELENGTH,
    nics: int = 1,
) -> AntennaArray:
    """A uniform circular array of N antennas (§7, "Antenna array").

    The paper: "the more antennas are available, the finer distance and
    orientation resolution" — upcoming chipsets with more antennas
    "immediately offer a better resolution".  A UCA of N antennas yields up
    to N(N-1) tractable directions; the benches sweep N to quantify the
    claim.

    Args:
        n_antennas: Number of antennas on the circle.
        radius: Circumradius, meters.
        nics: Number of NICs the antennas are split across (contiguous
            arcs, as in the paper's two-NIC hexagon).
    """
    if n_antennas < 3:
        raise ValueError(f"a circular array needs >= 3 antennas, got {n_antennas}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if not 1 <= nics <= n_antennas:
        raise ValueError(f"nics must be in [1, {n_antennas}], got {nics}")
    angles = np.deg2rad(90.0 - 360.0 / n_antennas * np.arange(n_antennas))
    pos = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    nic = (np.arange(n_antennas) * nics) // n_antennas
    return AntennaArray(
        name=f"uca-{n_antennas}",
        local_positions=pos,
        nic_assignment=nic.astype(np.int64),
        circular=True,
    )


def pair_world_angle(array: AntennaArray, i: int, j: int, orientation: float) -> float:
    """World-frame angle of the ray antenna i -> antenna j."""
    return float(array.pair_direction(i, j) + orientation)


def arc_separation(array: AntennaArray, i: int, j: int) -> float:
    """Arc length between antennas of a circular array (rotation Δd, §4.4).

    For in-place rotation every antenna moves along the circle of radius r;
    the travel distance for antenna i to reach antenna j's previous spot is
    the arc between them, r·Δφ — e.g. (π/3)·Δd for adjacent hexagon antennas.
    """
    if not array.circular:
        raise ValueError("arc separation is defined only for circular arrays")
    p_i = array.local_positions[i]
    p_j = array.local_positions[j]
    r_i = np.linalg.norm(p_i)
    r_j = np.linalg.norm(p_j)
    if not np.isclose(r_i, r_j, rtol=1e-6):
        raise ValueError("antennas are not on a common circle")
    cos_angle = float(np.clip(p_i @ p_j / (r_i * r_j), -1.0, 1.0))
    return float(r_i * np.arccos(cos_angle))
