"""Unit tests for aligned-pair detection and group selection (§4.3)."""

import numpy as np
import pytest

from repro.arrays.pairs import AntennaPair
from repro.core.alignment import AlignmentMatrix
from repro.core.pairs import (
    GroupTrack,
    PostCheck,
    path_quality,
    peak_prominence_score,
    post_check,
    select_group_per_sample,
)
from repro.core.tracking import TrackedPath, track_peaks


def _matrix(values):
    values = np.asarray(values, dtype=np.float64)
    w = (values.shape[1] - 1) // 2
    return AlignmentMatrix(values=values, lags=np.arange(-w, w + 1), sampling_rate=100.0, pair=(0, 1))


def _peaky_matrix(t=40, n_lags=11, peak_col=8, peak=0.9, floor=0.2, rng=None):
    values = np.full((t, n_lags), floor)
    if rng is not None:
        values = values + rng.uniform(0, 0.05, (t, n_lags))
    values[:, peak_col] = peak
    return _matrix(values)


def _track(matrix, pair=None):
    path = track_peaks(matrix)
    quality = path_quality(matrix, path, smoothing_window=5)
    pair = pair or AntennaPair(i=0, j=1, separation=0.026, axis_angle=0.0)
    return GroupTrack(pairs=[pair], matrix=matrix, path=path, quality=quality)


class TestProminence:
    def test_peaky_beats_flat(self, rng):
        peaky = _peaky_matrix(rng=rng)
        flat = _matrix(np.full((40, 11), 0.2) + rng.uniform(0, 0.05, (40, 11)))
        assert peak_prominence_score(peaky.values) > peak_prominence_score(flat.values)

    def test_moving_mask_restricts_rows(self, rng):
        values = np.full((40, 11), 0.2)
        values[:20, 8] = 0.9  # peaks only in the first half
        moving_first = np.zeros(40, dtype=bool)
        moving_first[:20] = True
        s_first = peak_prominence_score(values, moving_first)
        s_second = peak_prominence_score(values, ~moving_first)
        assert s_first > 0.5
        assert s_second < 0.1

    def test_all_nan_scores_zero(self):
        assert peak_prominence_score(np.full((5, 7), np.nan)) == 0.0

    def test_empty_mask_scores_zero(self, rng):
        values = rng.random((10, 7))
        assert peak_prominence_score(values, np.zeros(10, dtype=bool)) == 0.0


class TestPathQuality:
    def test_aligned_quality_high(self, rng):
        track = _track(_peaky_matrix(rng=rng))
        assert np.nanmean(track.quality) > 0.4

    def test_unaligned_quality_low(self, rng):
        flat = _matrix(0.2 + rng.uniform(0, 0.05, (40, 11)))
        track = _track(flat)
        assert np.nanmean(track.quality) < 0.15

    def test_quality_length(self, rng):
        track = _track(_peaky_matrix(t=25, rng=rng))
        assert track.quality.shape == (25,)


class TestPostCheck:
    def test_accepts_clean_track(self, rng):
        track = _track(_peaky_matrix(rng=rng))
        chk = post_check(track.matrix, track.path)
        assert chk.accepted
        assert chk.mean_path_trrs > 0.5

    def test_rejects_flat_track(self, rng):
        flat = _matrix(0.2 + rng.uniform(0, 0.02, (40, 11)))
        track = _track(flat)
        chk = post_check(track.matrix, track.path)
        assert not chk.accepted

    def test_rejects_jittery_track(self, rng):
        """A path bouncing across the lag axis fails the smoothness check."""
        from repro.core.tracking import greedy_argmax_path

        values = 0.1 + rng.uniform(0, 0.02, (60, 21))
        cols = np.where(np.arange(60) % 2 == 0, 1, 19)
        values[np.arange(60), cols] = 0.95
        matrix = _matrix(values)
        path = greedy_argmax_path(matrix)  # follows the bouncing peaks
        chk = post_check(matrix, path)
        assert chk.lag_jitter > 5.0
        assert not chk.accepted

    def test_moving_mask_respected(self, rng):
        m = _peaky_matrix(rng=rng)
        track = _track(m)
        moving = np.zeros(40, dtype=bool)
        chk = post_check(track.matrix, track.path, moving)
        assert chk.mean_path_trrs == 0.0


class TestSelection:
    def test_picks_strongest_group(self, rng):
        strong = _track(_peaky_matrix(peak=0.95, rng=rng))
        weak = _track(_peaky_matrix(peak=0.4, rng=rng))
        moving = np.ones(40, dtype=bool)
        choice = select_group_per_sample([strong, weak], moving)
        assert (choice == 0).all()

    def test_no_tracks(self):
        choice = select_group_per_sample([], np.ones(10, dtype=bool))
        assert (choice == -1).all()

    def test_not_moving_unassigned(self, rng):
        track = _track(_peaky_matrix(rng=rng))
        moving = np.zeros(40, dtype=bool)
        choice = select_group_per_sample([track], moving)
        assert (choice == -1).all()

    def test_min_quality_gate(self, rng):
        weak = _track(_matrix(0.2 + rng.uniform(0, 0.01, (40, 11))))
        moving = np.ones(40, dtype=bool)
        choice = select_group_per_sample([weak], moving, min_quality=0.3)
        assert (choice == -1).all()

    def test_hysteresis_prevents_flapping(self, rng):
        """Two groups with nearly equal quality: the incumbent persists."""
        t = 60
        qual_a = 0.5 + 0.01 * np.sin(np.arange(t))
        qual_b = 0.5 - 0.01 * np.sin(np.arange(t))
        a = _track(_peaky_matrix(t=t, rng=rng))
        b = _track(_peaky_matrix(t=t, rng=rng))
        a.quality[:] = qual_a
        b.quality[:] = qual_b
        moving = np.ones(t, dtype=bool)
        choice = select_group_per_sample([a, b], moving, hysteresis=0.05)
        switches = np.count_nonzero(np.diff(choice))
        assert switches == 0

    def test_clear_takeover_switches(self, rng):
        t = 60
        a = _track(_peaky_matrix(t=t, rng=rng))
        b = _track(_peaky_matrix(t=t, rng=rng))
        a.quality = np.where(np.arange(t) < 30, 0.8, 0.1)
        b.quality = np.where(np.arange(t) < 30, 0.1, 0.8)
        moving = np.ones(t, dtype=bool)
        choice = select_group_per_sample([a, b], moving, hysteresis=0.05)
        assert (choice[:25] == 0).all()
        assert (choice[-25:] == 1).all()
