"""TRRS-based movement detection (§4.1, Fig. 7).

A single antenna suffices: the TRRS between the current multipath profile
and the profile ``movement_lag`` seconds earlier stays near 1 while the
antenna is static and drops sharply once the antenna has moved millimeters.
A threshold on the self-TRRS (the red line of Fig. 7) flags movement; a
short majority filter removes single-packet glitches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.alignment import nan_moving_average
from repro.core.trrs import normalize_csi, trrs_series


@dataclass
class MovementResult:
    """Movement detection output.

    Attributes:
        indicator: (T,) self-TRRS movement indicator (near 1 when static).
        moving: (T,) boolean movement mask.
        threshold: The decision threshold used.
    """

    indicator: np.ndarray
    moving: np.ndarray
    threshold: float


def self_trrs_indicator(
    csi_antenna: np.ndarray,
    lag_samples: int,
    virtual_window: int = 1,
) -> np.ndarray:
    """κ(P_i(t), P_i(t - l_mv)) for one antenna (§4.1).

    Args:
        csi_antenna: (T, n_tx, S) sanitized CFR sequence of one antenna.
        lag_samples: l_mv in samples — long enough that real motion moves
            the antenna by millimeters within it.
        virtual_window: V used to smooth the indicator (Eqn. 4).

    Returns:
        (T,) indicator; the first ``lag_samples`` entries are backfilled
        from the first valid value.
    """
    if lag_samples < 1:
        raise ValueError(f"lag must be >= 1 sample, got {lag_samples}")
    norm = normalize_csi(csi_antenna)
    series = trrs_series(norm, norm, lag_samples)
    if virtual_window > 1:
        series = nan_moving_average(series[:, None], virtual_window)[:, 0]
    finite = np.nonzero(np.isfinite(series))[0]
    if finite.size:
        series[: finite[0]] = series[finite[0]]
        # Interior NaNs (packet loss): hold the previous value.
        for k in range(finite[0] + 1, len(series)):
            if not np.isfinite(series[k]):
                series[k] = series[k - 1]
    return series


def detect_movement(
    indicator: np.ndarray,
    threshold: float = 0.8,
    min_run: int = 5,
) -> MovementResult:
    """Threshold the self-TRRS indicator into a movement mask.

    Args:
        indicator: (T,) self-TRRS values.
        threshold: Movement is declared where indicator < threshold (§4.1:
            static self-TRRS stays close to 1).
        min_run: Runs of either state shorter than this many samples are
            merged into their surroundings (debouncing).

    Returns:
        The :class:`MovementResult`.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    moving = np.asarray(indicator) < threshold
    if min_run > 1 and moving.size:
        moving = _suppress_short_runs(moving, min_run)
    return MovementResult(
        indicator=np.asarray(indicator), moving=moving, threshold=threshold
    )


def _suppress_short_runs(mask: np.ndarray, min_run: int) -> np.ndarray:
    """Flip state runs shorter than ``min_run`` (except at the borders)."""
    mask = mask.copy()
    t = mask.size
    run_start = 0
    runs = []
    for k in range(1, t + 1):
        if k == t or mask[k] != mask[run_start]:
            runs.append((run_start, k))
            run_start = k
    for idx, (start, stop) in enumerate(runs):
        if stop - start < min_run and 0 < idx < len(runs) - 1:
            mask[start:stop] = ~mask[start]
    return mask


def movement_fraction(result: MovementResult) -> float:
    """Fraction of samples flagged as moving (diagnostic)."""
    if result.moving.size == 0:
        return 0.0
    return float(result.moving.mean())
