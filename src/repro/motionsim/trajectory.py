"""Ground-truth rigid-body trajectories for the moving antenna array.

A :class:`Trajectory` is the pose of the array center sampled at the CSI
packet rate: positions (T, 2), orientations (T,), and times (T,).  It stands
in for the paper's camera-based ground-truth rig (§6.1), except that here
the truth is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Trajectory:
    """Array-center pose versus time.

    Attributes:
        times: (T,) sample timestamps, seconds, strictly increasing.
        positions: (T, 2) world positions of the array center, meters.
        orientations: (T,) array rotation angle in the world frame, radians.
    """

    times: np.ndarray
    positions: np.ndarray
    orientations: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        positions = np.asarray(self.positions, dtype=np.float64)
        orientations = np.asarray(self.orientations, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("times must be 1D")
        if positions.shape != (times.shape[0], 2):
            raise ValueError(
                f"positions must be (T, 2) with T={times.shape[0]}, got {positions.shape}"
            )
        if orientations.shape != times.shape:
            raise ValueError("orientations must match times")
        if times.shape[0] >= 2 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "orientations", orientations)

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def sampling_rate(self) -> float:
        """Mean sampling rate (exact for uniformly sampled trajectories)."""
        if self.n_samples < 2:
            raise ValueError("sampling rate undefined for <2 samples")
        return float((self.n_samples - 1) / self.duration)

    def velocities(self) -> np.ndarray:
        """(T, 2) central-difference velocity of the array center, m/s."""
        return np.gradient(self.positions, self.times, axis=0)

    def speeds(self) -> np.ndarray:
        """(T,) ground-truth speed, m/s."""
        return np.linalg.norm(self.velocities(), axis=1)

    def headings(self) -> np.ndarray:
        """(T,) direction of motion, radians; NaN while stationary."""
        vel = self.velocities()
        speed = np.linalg.norm(vel, axis=1)
        heading = np.arctan2(vel[:, 1], vel[:, 0])
        return np.where(speed > 1e-9, heading, np.nan)

    def cumulative_distance(self) -> np.ndarray:
        """(T,) arc length traveled by the array center up to each sample."""
        steps = np.linalg.norm(np.diff(self.positions, axis=0), axis=1)
        return np.concatenate([[0.0], np.cumsum(steps)])

    @property
    def total_distance(self) -> float:
        return float(self.cumulative_distance()[-1])

    def total_rotation(self) -> float:
        """Net (signed, unwrapped) rotation over the trajectory, radians."""
        unwrapped = np.unwrap(self.orientations)
        return float(unwrapped[-1] - unwrapped[0])

    def slice(self, start: int, stop: int) -> "Trajectory":
        """A contiguous sub-trajectory [start:stop]."""
        return Trajectory(
            times=self.times[start:stop],
            positions=self.positions[start:stop],
            orientations=self.orientations[start:stop],
        )

    def concatenate(self, other: "Trajectory") -> "Trajectory":
        """Append another trajectory, shifting its clock to continue ours."""
        if other.n_samples == 0:
            return self
        dt = 1.0 / self.sampling_rate if self.n_samples >= 2 else 0.005
        shifted = other.times - other.times[0] + self.times[-1] + dt
        return Trajectory(
            times=np.concatenate([self.times, shifted]),
            positions=np.concatenate([self.positions, other.positions]),
            orientations=np.concatenate([self.orientations, other.orientations]),
        )
