"""Wire format of the network ingestion front-end (see ``docs/network.md``).

Every message on a RIM ingest connection is one **frame**: a 28-byte
little-endian header followed by a payload.  Header layout (``<4sHHIQII``,
via the shared :class:`repro.binfmt.HeaderCodec`):

======  ====  ===========  ==============================================
offset  size  field        meaning
======  ====  ===========  ==============================================
0       4     magic        ``b"RIMN"``
4       2     version      wire format version (this build speaks 1)
6       2     frame_type   one of the ``FRAME_*`` constants
8       4     session_id   server-assigned numeric session id (0 in HELLO)
12      8     seq          monotonic CSI sample seq (DATA) / monotonic
                           update seq (UPDATE) / cumulative ack seq + 1
                           (ACK, PING, BYE, UACK) / 0 otherwise
20      4     payload_len  payload length in bytes
24      4     crc32        CRC-32 over header[0:24] + payload
======  ====  ===========  ==============================================

The CRC covers the header fields as well as the payload, so a bit flip
anywhere in a frame — including its sequence number — is detected; a
frame never decodes to wrong data (enforced by a Hypothesis property
test).  :class:`FrameDecoder` consumes a raw byte stream incrementally
and **resynchronizes** after corruption by scanning for the next magic,
so one mangled frame costs exactly that frame, not the connection.

Payloads:

* ``HELLO`` / ``WELCOME`` / ``ERROR`` — UTF-8 JSON (session name, array
  geometry, resume seq + resume token, ...).
* ``DATA`` — 8-byte float64 timestamp followed by the complex64 CSI
  packet bytes (shape fixed per session by the HELLO).
* ``UPDATE`` — one :class:`~repro.core.streaming.MotionUpdate`, encoded
  by :func:`encode_update` (raw float64/uint8 arrays + JSON health tail;
  decoding is bit-exact, which the reconnect-resume guarantee relies on).
  The ``seq`` header field carries the update's own monotonic seq: the
  server retains every update until the client's cumulative ``UACK``
  covers it, resending unacked updates after a reconnect, and the client
  suppresses resent duplicates by seq — so the update stream survives a
  mid-flight disconnect without loss or duplication.
* ``ACK`` / ``PING`` / ``PONG`` / ``BYE`` / ``UACK`` — empty (the seq
  header field carries the cumulative ack + 1 where applicable).
* ``TELEMETRY`` — side-band provenance (best-effort, loss-tolerant, only
  sent while :mod:`repro.obs` is enabled).  Client -> server: an 8-byte
  float64 ``perf_counter`` create stamp for the *next* DATA sample (the
  seq field carries that sample's seq).  Server -> client: a JSON
  ``{"provenance": ...}`` latency breakdown for an emitted update (the
  seq field carries the update seq).  A dedicated frame type keeps every
  pre-existing frame layout byte-identical to PR 6's golden bytes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.binfmt import HeaderCodec, crc32_of
from repro.core.streaming import MotionUpdate
from repro.robustness.health import HealthReport

MAGIC = b"RIMN"
WIRE_VERSION = 1
SUPPORTED_WIRE_VERSIONS = (1,)

# Frame types.
FRAME_HELLO = 1  # client -> server: open/reattach a session (JSON payload)
FRAME_WELCOME = 2  # server -> client: session id + resume seq (JSON payload)
FRAME_DATA = 3  # client -> server: one CSI sample (timestamp + packet bytes)
FRAME_ACK = 4  # server -> client: cumulative delivery ack (seq field)
FRAME_UPDATE = 5  # server -> client: one MotionUpdate
FRAME_PING = 6  # server -> client: heartbeat (carries the current ack)
FRAME_PONG = 7  # client -> server: heartbeat reply
FRAME_BYE = 8  # either: graceful end of stream
FRAME_ERROR = 9  # server -> client: fatal protocol error (JSON payload)
FRAME_UACK = 10  # client -> server: cumulative update-stream ack (seq field)
FRAME_TELEMETRY = 11  # either: side-band provenance (sample stamp / breakdown)

FRAME_TYPES = (
    FRAME_HELLO,
    FRAME_WELCOME,
    FRAME_DATA,
    FRAME_ACK,
    FRAME_UPDATE,
    FRAME_PING,
    FRAME_PONG,
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_UACK,
    FRAME_TELEMETRY,
)

FRAME_NAMES = {
    FRAME_HELLO: "HELLO",
    FRAME_WELCOME: "WELCOME",
    FRAME_DATA: "DATA",
    FRAME_ACK: "ACK",
    FRAME_UPDATE: "UPDATE",
    FRAME_PING: "PING",
    FRAME_PONG: "PONG",
    FRAME_BYE: "BYE",
    FRAME_ERROR: "ERROR",
    FRAME_UACK: "UACK",
    FRAME_TELEMETRY: "TELEMETRY",
}

# Frames larger than this are treated as header corruption: no legitimate
# CSI packet or update comes close, and a mangled payload_len must not
# stall the decoder waiting for bytes that will never arrive.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

TIMESTAMP_STRUCT = struct.Struct("<d")


class FrameError(ValueError):
    """A malformed or corrupt wire frame."""


HEADER_CODEC = HeaderCodec(
    MAGIC, "<4sHHIQII", SUPPORTED_WIRE_VERSIONS, error_cls=FrameError
)
HEADER_SIZE = HEADER_CODEC.size  # 28 bytes
_CRC_OFFSET = HEADER_SIZE - 4  # crc32 is the final header field


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    frame_type: int
    session_id: int
    seq: int
    payload: bytes

    @property
    def type_name(self) -> str:
        return FRAME_NAMES.get(self.frame_type, f"type-{self.frame_type}")


def pack_frame(
    frame_type: int, session_id: int = 0, seq: int = 0, payload: bytes = b""
) -> bytes:
    """Encode one frame (header + payload) ready to write to a socket."""
    if frame_type not in FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    header = HEADER_CODEC.pack(
        WIRE_VERSION, frame_type, session_id, seq, len(payload), 0
    )
    crc = crc32_of(header[:_CRC_OFFSET], payload)
    return header[:_CRC_OFFSET] + struct.pack("<I", crc) + payload


def unpack_frame(buf: bytes, where: str = "frame") -> Frame:
    """Decode one complete frame from an exact buffer.

    Raises:
        FrameError: On truncation, bad magic/version, an unknown frame
            type, or a CRC mismatch anywhere in the frame.
    """
    (
        _version,
        frame_type,
        session_id,
        seq,
        payload_len,
        crc,
    ) = HEADER_CODEC.unpack(buf, where=where)
    if frame_type not in FRAME_TYPES:
        raise FrameError(f"{where}: unknown frame type {frame_type}")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise FrameError(f"{where}: implausible payload length {payload_len}")
    if len(buf) < HEADER_SIZE + payload_len:
        raise FrameError(
            f"{where}: torn frame ({len(buf) - HEADER_SIZE} of "
            f"{payload_len} payload bytes)"
        )
    payload = bytes(buf[HEADER_SIZE : HEADER_SIZE + payload_len])
    if crc32_of(bytes(buf[:_CRC_OFFSET]), payload) != crc:
        raise FrameError(f"{where}: frame CRC-32 mismatch")
    return Frame(
        frame_type=frame_type, session_id=session_id, seq=seq, payload=payload
    )


class FrameDecoder:
    """Incremental frame decoder with corruption resync.

    Feed raw socket bytes with :meth:`feed`; pull complete, CRC-verified
    frames with :meth:`frames`.  Corruption never yields a bad frame:

    * a frame whose CRC fails is dropped (``n_crc_dropped``) and the
      decoder skips past its magic, rescanning the remaining bytes;
    * junk between frames (mangled headers, partial garbage) is skipped
      by scanning for the next magic (``n_resyncs`` counts each skip).

    The decoder is transport-agnostic and never blocks: with fewer bytes
    than a complete frame buffered, :meth:`frames` simply yields nothing.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.n_frames = 0
        self.n_crc_dropped = 0
        self.n_resyncs = 0

    @property
    def buffered_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf += data

    def frames(self) -> Iterator[Frame]:
        """Yield every complete frame currently decodable."""
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield frame

    def _next_frame(self) -> Optional[Frame]:
        while True:
            at = self._buf.find(MAGIC)
            if at < 0:
                # No magic in sight: keep a potential partial-magic tail.
                if len(self._buf) > 3:
                    self.n_resyncs += 1
                    del self._buf[:-3]
                return None
            if at > 0:
                self.n_resyncs += 1
                del self._buf[:at]
            if len(self._buf) < HEADER_SIZE:
                return None
            try:
                (
                    _version,
                    frame_type,
                    _session_id,
                    _seq,
                    payload_len,
                    _crc,
                ) = HEADER_CODEC.unpack(bytes(self._buf[:HEADER_SIZE]))
                if frame_type not in FRAME_TYPES:
                    raise FrameError(f"unknown frame type {frame_type}")
                if payload_len > MAX_PAYLOAD_BYTES:
                    raise FrameError(f"implausible payload length {payload_len}")
            except FrameError:
                # Mangled header: skip this magic and rescan.
                self.n_resyncs += 1
                del self._buf[: len(MAGIC)]
                continue
            total = HEADER_SIZE + payload_len
            if len(self._buf) < total:
                return None
            try:
                frame = unpack_frame(bytes(self._buf[:total]))
            except FrameError:
                # Header looked sane but the frame is corrupt: drop it by
                # skipping its magic, so any real frame hiding inside the
                # corrupt span is still found on rescan.
                self.n_crc_dropped += 1
                del self._buf[: len(MAGIC)]
                continue
            del self._buf[:total]
            self.n_frames += 1
            return frame


# -- DATA payloads -------------------------------------------------------------


def pack_data_payload(timestamp: float, packet: np.ndarray) -> bytes:
    """Encode one CSI sample: float64 timestamp + complex64 packet bytes."""
    packet = np.ascontiguousarray(packet, dtype=np.complex64)
    return TIMESTAMP_STRUCT.pack(float(timestamp)) + packet.tobytes()


def unpack_data_payload(
    payload: bytes, sample_shape: Tuple[int, ...], where: str = "DATA"
) -> Tuple[float, np.ndarray]:
    """Decode a DATA payload into ``(timestamp, packet)``.

    Raises:
        FrameError: When the payload length disagrees with the session's
            sample shape (a frame from a different geometry, or a
            corrupt-but-CRC-colliding payload; both are dropped upstream).
    """
    expected = TIMESTAMP_STRUCT.size + int(np.prod(sample_shape)) * 8
    if len(payload) != expected:
        raise FrameError(
            f"{where}: payload of {len(payload)} bytes does not hold one "
            f"sample of shape {tuple(sample_shape)} ({expected} bytes)"
        )
    (timestamp,) = TIMESTAMP_STRUCT.unpack_from(payload)
    packet = np.frombuffer(
        payload, dtype=np.complex64, offset=TIMESTAMP_STRUCT.size
    ).reshape(sample_shape)
    return float(timestamp), packet.copy()


# -- TELEMETRY payloads --------------------------------------------------------


def pack_sample_telemetry(session_id: int, seq: int, created_s: float) -> bytes:
    """Client->server TELEMETRY: the create stamp for DATA sample ``seq``.

    Sent best-effort *before* the DATA frame it describes, bypassing the
    fault injector, so telemetry can never perturb the deterministic
    (seed, seq) fault schedule or the data stream itself.
    """
    return pack_frame(
        FRAME_TELEMETRY,
        session_id=session_id,
        seq=seq,
        payload=TIMESTAMP_STRUCT.pack(float(created_s)),
    )


def unpack_sample_telemetry(payload: bytes, where: str = "TELEMETRY") -> float:
    """Decode a client->server TELEMETRY payload into the create stamp."""
    if len(payload) != TIMESTAMP_STRUCT.size:
        raise FrameError(
            f"{where}: sample telemetry payload must be "
            f"{TIMESTAMP_STRUCT.size} bytes, got {len(payload)}"
        )
    (created_s,) = TIMESTAMP_STRUCT.unpack(payload)
    return float(created_s)


def pack_update_telemetry(
    session_id: int, update_seq: int, breakdown: Dict[str, Any]
) -> bytes:
    """Server->client TELEMETRY: the latency breakdown of update ``seq``."""
    return pack_frame(
        FRAME_TELEMETRY,
        session_id=session_id,
        seq=update_seq,
        payload=pack_json_payload({"provenance": breakdown}),
    )


def unpack_update_telemetry(
    payload: bytes, where: str = "TELEMETRY"
) -> Dict[str, Any]:
    """Decode a server->client TELEMETRY payload into the breakdown dict."""
    decoded = unpack_json_payload(payload, where=where)
    breakdown = decoded.get("provenance")
    if not isinstance(breakdown, dict):
        raise FrameError(f"{where}: update telemetry missing 'provenance'")
    return breakdown


# -- JSON payloads -------------------------------------------------------------


def pack_json_payload(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def unpack_json_payload(payload: bytes, where: str = "frame") -> Dict[str, Any]:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"{where}: malformed JSON payload ({exc})") from None
    if not isinstance(decoded, dict):
        raise FrameError(f"{where}: JSON payload must be an object")
    return decoded


# -- UPDATE payloads -----------------------------------------------------------

_UPDATE_HEAD = struct.Struct("<II")  # (n_samples, json_tail_len)


def encode_update(update: MotionUpdate) -> bytes:
    """Serialize a MotionUpdate for an UPDATE frame (bit-exact arrays).

    Layout: ``<II`` (sample count, JSON tail length), then ``times`` /
    ``speed`` / ``heading`` as float64 and ``moving`` as uint8, then a
    JSON tail carrying the distances (via repr — floats round-trip
    exactly) and the health report.  ``stats`` (local profiling spans)
    do not travel.
    """
    n = int(update.times.size)
    tail: Dict[str, Any] = {
        "block_distance": float(update.block_distance),
        "total_distance": float(update.total_distance),
        "health": _health_to_json(update.health),
    }
    tail_bytes = json.dumps(tail, sort_keys=True).encode("utf-8")
    return b"".join(
        (
            _UPDATE_HEAD.pack(n, len(tail_bytes)),
            np.ascontiguousarray(update.times, dtype=np.float64).tobytes(),
            np.ascontiguousarray(update.speed, dtype=np.float64).tobytes(),
            np.ascontiguousarray(update.heading, dtype=np.float64).tobytes(),
            np.ascontiguousarray(update.moving, dtype=np.uint8).tobytes(),
            tail_bytes,
        )
    )


def decode_update(payload: bytes, where: str = "UPDATE") -> MotionUpdate:
    """Inverse of :func:`encode_update`."""
    if len(payload) < _UPDATE_HEAD.size:
        raise FrameError(f"{where}: truncated update payload")
    n, tail_len = _UPDATE_HEAD.unpack_from(payload)
    arrays_bytes = n * (8 + 8 + 8 + 1)
    expected = _UPDATE_HEAD.size + arrays_bytes + tail_len
    if len(payload) != expected:
        raise FrameError(
            f"{where}: update payload length {len(payload)} != {expected} "
            f"for {n} samples"
        )
    at = _UPDATE_HEAD.size
    times = np.frombuffer(payload, dtype=np.float64, count=n, offset=at).copy()
    at += 8 * n
    speed = np.frombuffer(payload, dtype=np.float64, count=n, offset=at).copy()
    at += 8 * n
    heading = np.frombuffer(payload, dtype=np.float64, count=n, offset=at).copy()
    at += 8 * n
    moving = (
        np.frombuffer(payload, dtype=np.uint8, count=n, offset=at)
        .astype(bool)
        .copy()
    )
    at += n
    tail = unpack_json_payload(payload[at:], where=where)
    return MotionUpdate(
        times=times,
        speed=speed,
        heading=heading,
        moving=moving,
        block_distance=float(tail["block_distance"]),
        total_distance=float(tail["total_distance"]),
        health=_health_from_json(tail.get("health")),
    )


def _health_to_json(health: Optional[HealthReport]) -> Optional[Dict[str, Any]]:
    if health is None:
        return None
    liveness = health.chain_liveness
    return {
        "n_samples": int(health.n_samples),
        "n_chains": int(health.n_chains),
        "loss_rate": float(health.loss_rate),
        "chain_liveness": (
            None
            if liveness is None
            else [float(v) for v in np.asarray(liveness, dtype=np.float64)]
        ),
        "dead_chains": [int(c) for c in health.dead_chains],
        "usable_pairs": int(health.usable_pairs),
        "usable_groups": int(health.usable_groups),
        "alignment_confidence": float(health.alignment_confidence),
        "repairs": {str(k): int(v) for k, v in health.repairs.items()},
        "degraded": bool(health.degraded),
        "heading_unresolved": bool(health.heading_unresolved),
    }


def _health_from_json(payload: Optional[Dict[str, Any]]) -> Optional[HealthReport]:
    if payload is None:
        return None
    liveness = payload.get("chain_liveness")
    return HealthReport(
        n_samples=int(payload["n_samples"]),
        n_chains=int(payload["n_chains"]),
        loss_rate=float(payload["loss_rate"]),
        chain_liveness=(
            None if liveness is None else np.asarray(liveness, dtype=np.float64)
        ),
        dead_chains=[int(c) for c in payload["dead_chains"]],
        usable_pairs=int(payload["usable_pairs"]),
        usable_groups=int(payload["usable_groups"]),
        alignment_confidence=float(payload["alignment_confidence"]),
        repairs={str(k): int(v) for k, v in payload["repairs"].items()},
        degraded=bool(payload["degraded"]),
        heading_unresolved=bool(payload["heading_unresolved"]),
    )
