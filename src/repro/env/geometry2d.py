"""Vectorized 2D segment geometry used by the floorplan substrate.

Everything here operates on arrays of segments so that wall-crossing counts
for thousands of propagation paths are a handful of NumPy broadcasts.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _as_points(points) -> np.ndarray:
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.shape[-1] != 2:
        raise ValueError(f"expected 2D points, got shape {arr.shape}")
    return arr


def segments_intersect(p1, p2, q1, q2) -> np.ndarray:
    """Test proper intersection between segment batches.

    ``p1, p2`` define N segments and ``q1, q2`` define M segments; the result
    is an (N, M) boolean matrix.  Touching at exactly one endpoint counts as
    an intersection (a ray grazing a wall corner is treated as blocked, which
    is the conservative choice for radio attenuation).
    """
    p1 = _as_points(p1)[:, None, :]
    p2 = _as_points(p2)[:, None, :]
    q1 = _as_points(q1)[None, :, :]
    q2 = _as_points(q2)[None, :, :]

    d1 = p2 - p1
    d2 = q2 - q1
    denom = d1[..., 0] * d2[..., 1] - d1[..., 1] * d2[..., 0]
    delta = q1 - p1

    t_num = delta[..., 0] * d2[..., 1] - delta[..., 1] * d2[..., 0]
    u_num = delta[..., 0] * d1[..., 1] - delta[..., 1] * d1[..., 0]

    parallel = np.abs(denom) < _EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(parallel, np.inf, t_num / np.where(parallel, 1.0, denom))
        u = np.where(parallel, np.inf, u_num / np.where(parallel, 1.0, denom))

    hit = (~parallel) & (t >= -_EPS) & (t <= 1 + _EPS) & (u >= -_EPS) & (u <= 1 + _EPS)
    return hit


def crossing_counts(starts, ends, wall_starts, wall_ends) -> np.ndarray:
    """Count how many walls each path segment crosses.

    Args:
        starts, ends: (N, 2) path endpoints.
        wall_starts, wall_ends: (M, 2) wall endpoints.

    Returns:
        (N,) integer array of wall crossings per path.
    """
    wall_starts = _as_points(wall_starts)
    if wall_starts.shape[0] == 0:
        return np.zeros(_as_points(starts).shape[0], dtype=np.int64)
    hits = segments_intersect(starts, ends, wall_starts, wall_ends)
    return hits.sum(axis=1).astype(np.int64)


def point_segment_distance(points, seg_start, seg_end) -> np.ndarray:
    """Distance from each point to one segment.

    Args:
        points: (N, 2) query points.
        seg_start, seg_end: segment endpoints, shape (2,).

    Returns:
        (N,) distances.
    """
    points = _as_points(points)
    a = np.asarray(seg_start, dtype=np.float64)
    b = np.asarray(seg_end, dtype=np.float64)
    ab = b - a
    denom = float(ab @ ab)
    if denom < _EPS:
        return np.linalg.norm(points - a, axis=1)
    t = np.clip(((points - a) @ ab) / denom, 0.0, 1.0)
    closest = a + t[:, None] * ab
    return np.linalg.norm(points - closest, axis=1)


def polyline_length(points) -> float:
    """Total length of a polyline given as (N, 2) vertices."""
    points = _as_points(points)
    if points.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(points, axis=0), axis=1).sum())


def resample_polyline(points, spacing: float) -> np.ndarray:
    """Resample a polyline at (approximately) uniform arc-length spacing.

    Args:
        points: (N, 2) polyline vertices.
        spacing: Desired distance between consecutive output samples.

    Returns:
        (M, 2) resampled points, including both endpoints.
    """
    points = _as_points(points)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    if points.shape[0] < 2:
        return points.copy()
    seg = np.linalg.norm(np.diff(points, axis=0), axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    total = cum[-1]
    if total == 0.0:
        return points[:1].copy()
    n_samples = max(2, int(round(total / spacing)) + 1)
    targets = np.linspace(0.0, total, n_samples)
    xs = np.interp(targets, cum, points[:, 0])
    ys = np.interp(targets, cum, points[:, 1])
    return np.stack([xs, ys], axis=1)
