#!/usr/bin/env python
"""Perf-baseline harness: profile the RIM pipeline and emit BENCH_perf.json.

Runs the batch and streaming estimators on the standard testbed with the
``repro.obs`` instrumentation enabled and writes per-stage wall-time
spans, work counters, and the streaming per-block latency histogram to a
JSON baseline.  Subsequent optimisation PRs regenerate the file to prove
the hot paths got faster (never slower).

Usage::

    PYTHONPATH=src python benchmarks/perf_baseline.py --quick --out BENCH_perf.json --check
    PYTHONPATH=src python benchmarks/perf_baseline.py --gate BENCH_perf.json

``--check`` validates the structural schema after writing (no timing
thresholds — CI must stay hardware-independent).  ``--gate PATH`` is the
perf-regression gate: it compares the fresh run against the committed
baseline at PATH and fails if ``rim.process`` wall time regressed by more
than ``--max-regression`` (default 25%), the batched backend stopped
beating the reference kernel, multi-session serving throughput
(``serving.parallel.sessions_per_second``, schema v3) regressed beyond
the same budget, the store write/read bandwidth and replay throughput
(``store.*``, schema v4) did, the network front-end ingest throughput
and reconnect-recovery time (``net.*``, schema v5) did, the telemetry
A/B overhead (``obs_overhead.overhead_frac``, schema v6) exceeded the
budget, a gated tentpole stage span (``dp_tracking``/``rim.sanitize``,
schema v7) regressed individually, the opt-in float32 kernel mode
(``kernel_dtypes``, schema v7) stopped being at least as fast as
float64, the single-shard fleet throughput (``shard_scaling``, schema
v8) regressed, or the fitted capacity model / reference-cell latency
(``capacity``, schema v9 — fed by the ``repro.bench`` experiment-matrix
harness, see ``docs/benchmarking.md``) degraded.  Multi-shard scaling
*efficiency* is recorded in the payload but gated separately by
``benchmarks/shard_scaling.py`` on a runner with known core count.
Equivalent CLI verb: ``python -m repro.cli profile``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_perf.json", help="output path")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick", action="store_true", default=True,
        help="short trace (default; CI smoke size)",
    )
    scale.add_argument(
        "--full", action="store_true", help="longer, paper-scale workload"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the written payload's schema and exit non-zero on drift",
    )
    parser.add_argument(
        "--gate", metavar="PATH", default=None,
        help="compare against the committed baseline at PATH and fail on "
        "a perf regression (implies a fresh measurement; nothing is "
        "overwritten unless --out is also given)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional rim.process slowdown for --gate "
        "(default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--sessions", type=int, default=8, metavar="N",
        help="session count for the multi-session serving profile (default 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="thread-pool width for the parallel serving run (default 4)",
    )
    args = parser.parse_args(argv)

    from repro.eval.perf import (
        check_perf_regression,
        render_perf_summary,
        run_perf_baseline,
        validate_perf_payload,
        write_perf_baseline,
    )

    payload = run_perf_baseline(
        seed=args.seed,
        quick=not args.full,
        n_sessions=args.sessions,
        n_workers=args.workers,
    )
    if args.gate is None or args.out != parser.get_default("out"):
        write_perf_baseline(args.out, payload)
        wrote = args.out
    else:
        wrote = None
    print(render_perf_summary(payload))
    if wrote:
        print(f"\nwrote {wrote}")
    if args.check:
        validate_perf_payload(payload)
        print("schema check: ok")
    if args.gate is not None:
        with open(args.gate, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_perf_regression(
            payload, baseline, max_regression=args.max_regression
        )
        if failures:
            print(f"\nperf gate vs {args.gate}: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nperf gate vs {args.gate}: ok (budget +{args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
