"""Tests for the evaluation harness (testbed setup + experiment runners).

Experiment runners are exercised in quick mode; assertions check the
*shape* of each result (who wins, what improves) rather than absolute
numbers, mirroring how EXPERIMENTS.md compares against the paper.
"""

import numpy as np
import pytest

from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed


class TestTestbed:
    def test_default_setup(self):
        bed = make_testbed(seed=0)
        assert bed.floorplan.width == pytest.approx(36.5)
        assert bed.sampler.tx_positions.shape == (3, 2)
        np.testing.assert_allclose(
            bed.sampler.tx_positions.mean(axis=0), bed.ap_position, atol=1e-9
        )

    def test_ap_site_selection(self):
        bed = make_testbed(seed=0, ap_site=3)
        np.testing.assert_allclose(
            bed.ap_position, bed.floorplan.ap_sites[3], atol=1e-9
        )

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            make_testbed(ap_site=9)

    def test_seed_reproducible(self):
        a = make_testbed(seed=5)
        b = make_testbed(seed=5)
        np.testing.assert_array_equal(
            a.channel.scatterers.positions, b.channel.scatterers.positions
        )

    def test_seeds_differ(self):
        a = make_testbed(seed=5)
        b = make_testbed(seed=6)
        assert not np.array_equal(
            a.channel.scatterers.positions, b.channel.scatterers.positions
        )

    def test_far_corner_is_nlos_for_most_spots(self):
        bed = make_testbed(seed=0, ap_site=0)
        nlos = sum(not bed.has_los(s) for s in MEASUREMENT_SPOTS)
        assert nlos >= len(MEASUREMENT_SPOTS) // 2

    def test_measurement_spots_inside(self):
        bed = make_testbed(seed=0)
        for spot in MEASUREMENT_SPOTS:
            assert bed.floorplan.contains([spot])[0]

    def test_grouped_grid_override(self):
        from repro.channel.ofdm import make_grid

        bed = make_testbed(seed=0, grid=make_grid().grouped(30))
        assert bed.channel.grid.n_subcarriers == 30


@pytest.mark.slow
class TestExperimentRunners:
    """Quick-mode smoke runs of every figure runner."""

    def test_fig4(self):
        from repro.eval.experiments import run_fig4_trrs_resolution

        r = run_fig4_trrs_resolution(quick=True)
        m = r["measured"]
        assert m["self_drop_within_5mm"] > 0.02
        assert abs(m["cross_peak_at_mm"] - m["expected_peak_mm"]) < 6.0

    def test_fig6(self):
        from repro.eval.experiments import run_fig6_deviated_retracing

        r = run_fig6_deviated_retracing(quick=True)
        prom = r["measured"]["prominence_by_deviation"]
        # Evident peak at 15 deg deviation; clear collapse far beyond it.
        assert prom[15.0] > 0.05
        assert prom[45.0] < 0.6 * prom[0.0]

    def test_fig7(self):
        from repro.eval.experiments import run_fig7_movement_detection

        r = run_fig7_movement_detection(quick=True)
        m = r["measured"]
        assert m["rim_accuracy"] > m["accelerometer_accuracy"]
        assert m["rim_accuracy"] > m["gyroscope_accuracy"]

    def test_fig8(self):
        from repro.eval.experiments import run_fig8_peak_tracking

        r = run_fig8_peak_tracking(quick=True)
        m = r["measured"]
        assert m["sign_flip_detected"]
        assert abs(abs(m["forward_lag"]) - m["expected_abs_lag"]) < 4.0

    def test_fig16_downsampling_monotone(self):
        from repro.eval.experiments import run_fig16_sampling_rate

        r = run_fig16_sampling_rate(quick=True)
        assert r["measured"]["monotone_improvement"]

    def test_fig17_virtual_antennas(self):
        from repro.eval.experiments import run_fig17_virtual_antennas

        r = run_fig17_virtual_antennas(quick=True)
        assert r["measured"]["improves_with_v"]

    def test_sec629_complexity(self):
        from repro.eval.applications import run_sec629_complexity

        r = run_sec629_complexity(quick=True)
        assert r["measured"]["samples_per_second"] > 0
