"""Unit tests for the CSI impairment pipeline."""

import numpy as np
import pytest

from repro.channel.impairments import CsiImpairer, ImpairmentConfig, clean
from repro.channel.ofdm import make_grid


@pytest.fixture()
def grid():
    return make_grid().grouped(16)


def _ideal_csi(grid, t=50, n_rx=2, n_tx=2, seed=0):
    rng = np.random.default_rng(seed)
    shape = (t, n_rx, n_tx, grid.n_subcarriers)
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
        np.complex64
    )


class TestConfigValidation:
    def test_negative_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="packet_loss_rate"):
            ImpairmentConfig(packet_loss_rate=-0.01)

    def test_loss_rate_of_one_rejected(self):
        with pytest.raises(ValueError, match="packet_loss_rate"):
            ImpairmentConfig(packet_loss_rate=1.0)

    def test_negative_burstiness_rejected(self):
        with pytest.raises(ValueError, match="loss_burstiness"):
            ImpairmentConfig(loss_burstiness=-0.5)

    def test_negative_noise_params_rejected(self):
        with pytest.raises(ValueError, match="timing_jitter_std"):
            ImpairmentConfig(timing_jitter_std=-1e-9)
        with pytest.raises(ValueError, match="cfo_phase_std"):
            ImpairmentConfig(cfo_phase_std=-0.1)
        with pytest.raises(ValueError, match="antenna_ripple"):
            ImpairmentConfig(antenna_ripple=-0.1)
        with pytest.raises(ValueError, match="ripple_components"):
            ImpairmentConfig(ripple_components=0)

    def test_boundary_values_accepted(self):
        cfg = ImpairmentConfig(
            packet_loss_rate=0.0, loss_burstiness=0.0, timing_jitter_std=0.0
        )
        assert cfg.packet_loss_rate == 0.0


class TestCleanConfig:
    def test_clean_is_identity(self, grid):
        csi = _ideal_csi(grid)
        imp = CsiImpairer(clean(), grid, n_rx=2, rng=np.random.default_rng(1))
        out = imp.apply(csi)
        np.testing.assert_allclose(out, csi, atol=1e-6)


class TestShapes:
    def test_wrong_ndim_rejected(self, grid):
        imp = CsiImpairer(clean(), grid, n_rx=2)
        with pytest.raises(ValueError):
            imp.apply(np.zeros((5, 2, 16), dtype=np.complex64))

    def test_wrong_rx_count_rejected(self, grid):
        imp = CsiImpairer(clean(), grid, n_rx=3)
        with pytest.raises(ValueError):
            imp.apply(_ideal_csi(grid, n_rx=2))

    def test_wrong_tone_count_rejected(self, grid):
        imp = CsiImpairer(clean(), grid, n_rx=2)
        bad = np.zeros((5, 2, 2, grid.n_subcarriers + 1), dtype=np.complex64)
        with pytest.raises(ValueError):
            imp.apply(bad)

    def test_output_shape_and_dtype(self, grid):
        csi = _ideal_csi(grid)
        imp = CsiImpairer(ImpairmentConfig(), grid, n_rx=2, rng=np.random.default_rng(2))
        out = imp.apply(csi)
        assert out.shape == csi.shape
        assert out.dtype == np.complex64


class TestPhaseImpairments:
    def test_initial_phase_preserves_magnitude(self, grid):
        cfg = clean()
        cfg.initial_phase = True
        csi = _ideal_csi(grid)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(3))
        out = imp.apply(csi)
        np.testing.assert_allclose(np.abs(out), np.abs(csi), rtol=1e-5)

    def test_initial_phase_is_common_across_tones(self, grid):
        cfg = clean()
        cfg.initial_phase = True
        csi = _ideal_csi(grid)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(4))
        out = imp.apply(csi)
        rotation = out / csi
        # Same per-packet rotation on every tone and TX of an RX chain.
        std = np.angle(rotation / rotation[..., :1]).std()
        assert std < 1e-5

    def test_timing_jitter_creates_phase_slope(self, grid):
        cfg = clean()
        cfg.timing_jitter_std = 0.5
        csi = np.ones((20, 1, 1, grid.n_subcarriers), dtype=np.complex64)
        imp = CsiImpairer(cfg, grid, n_rx=1, rng=np.random.default_rng(5))
        out = imp.apply(csi)
        phases = np.unwrap(np.angle(out[:, 0, 0, :]), axis=1)
        slopes = (phases[:, -1] - phases[:, 0]) / (grid.index_array[-1] - grid.index_array[0])
        assert slopes.std() > 0.001

    def test_cfo_walk_rotates_over_time(self, grid):
        cfg = clean()
        cfg.cfo_phase_std = 0.3
        csi = np.ones((50, 1, 1, grid.n_subcarriers), dtype=np.complex64)
        imp = CsiImpairer(cfg, grid, n_rx=1, rng=np.random.default_rng(6))
        out = imp.apply(csi)
        phases = np.angle(out[:, 0, 0, 0])
        assert np.abs(np.diff(phases)).max() > 0.05


class TestRippleAndNoise:
    def test_ripple_fixed_over_time(self, grid):
        cfg = clean()
        cfg.antenna_ripple = 0.3
        csi = np.ones((10, 2, 1, grid.n_subcarriers), dtype=np.complex64)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(7))
        out = imp.apply(csi)
        for a in range(2):
            ref = out[0, a, 0]
            for t in range(1, 10):
                np.testing.assert_allclose(out[t, a, 0], ref, rtol=1e-6)

    def test_ripple_differs_between_antennas(self, grid):
        cfg = clean()
        cfg.antenna_ripple = 0.3
        csi = np.ones((2, 2, 1, grid.n_subcarriers), dtype=np.complex64)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(8))
        out = imp.apply(csi)
        assert not np.allclose(out[0, 0, 0], out[0, 1, 0], rtol=1e-3)

    def test_noise_snr_calibrated(self, grid):
        cfg = clean()
        cfg.snr_db = 20.0
        csi = _ideal_csi(grid, t=400)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(9))
        out = imp.apply(csi)
        noise_power = np.mean(np.abs(out - csi) ** 2)
        signal_power = np.mean(np.abs(csi) ** 2)
        measured_snr = 10 * np.log10(signal_power / noise_power)
        assert measured_snr == pytest.approx(20.0, abs=0.5)


class TestPacketLoss:
    def test_loss_rate(self, grid):
        cfg = clean()
        cfg.packet_loss_rate = 0.2
        csi = _ideal_csi(grid, t=2000)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(10))
        out = imp.apply(csi)
        lost = np.isnan(out.real).any(axis=(1, 2, 3))
        assert lost.mean() == pytest.approx(0.2, abs=0.05)

    def test_lost_packet_entirely_nan(self, grid):
        cfg = clean()
        cfg.packet_loss_rate = 0.5
        csi = _ideal_csi(grid, t=50)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(11))
        out = imp.apply(csi)
        lost = np.isnan(out.real).any(axis=(1, 2, 3))
        for t in np.nonzero(lost)[0]:
            assert np.isnan(out[t].real).all()

    def test_bursty_loss_produces_runs(self, grid):
        cfg = clean()
        cfg.packet_loss_rate = 0.2
        cfg.loss_burstiness = 8.0
        csi = _ideal_csi(grid, t=4000)
        imp = CsiImpairer(cfg, grid, n_rx=2, rng=np.random.default_rng(12))
        out = imp.apply(csi)
        lost = np.isnan(out.real).any(axis=(1, 2, 3))
        # Mean run length of losses should be well above 1 (i.i.d. gives ~1.25).
        runs = []
        count = 0
        for flag in lost:
            if flag:
                count += 1
            elif count:
                runs.append(count)
                count = 0
        if count:
            runs.append(count)
        assert np.mean(runs) > 2.5
