"""Tests for the uniform circular array extension (§7)."""

import numpy as np
import pytest

from repro.arrays.geometry import arc_separation, uniform_circular_array
from repro.arrays.pairs import adjacent_ring_pairs, supported_directions
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.eval.metrics import circular_mean, heading_error_deg
from repro.motionsim.profiles import line_trajectory


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_circular_array(2)
        with pytest.raises(ValueError):
            uniform_circular_array(6, radius=0.0)
        with pytest.raises(ValueError):
            uniform_circular_array(6, nics=7)

    def test_antennas_on_circle(self):
        arr = uniform_circular_array(8, radius=0.03)
        radii = np.linalg.norm(arr.local_positions, axis=1)
        np.testing.assert_allclose(radii, 0.03, rtol=1e-9)

    def test_direction_count_scales(self):
        """N antennas on a circle → 2N resolvable directions (N even)."""
        for n in (4, 6, 8, 12):
            dirs = supported_directions(uniform_circular_array(n))
            assert len(dirs) == 2 * n

    def test_matches_hexagon_at_six(self):
        from repro.arrays.geometry import hexagonal_array

        uca = uniform_circular_array(6)
        hexa = hexagonal_array()
        np.testing.assert_allclose(
            np.sort(supported_directions(uca)),
            np.sort(supported_directions(hexa)),
            atol=1e-9,
        )

    def test_ring_pairs_and_arc(self):
        arr = uniform_circular_array(8, radius=0.03)
        ring = adjacent_ring_pairs(arr)
        assert len(ring) == 8
        arc = arc_separation(arr, ring[0].i, ring[0].j)
        assert arc == pytest.approx(0.03 * 2 * np.pi / 8, rel=1e-9)

    def test_nic_split(self):
        arr = uniform_circular_array(8, nics=2)
        counts = np.bincount(arr.nic_assignment)
        np.testing.assert_array_equal(counts, [4, 4])


class TestResolution:
    def test_more_antennas_finer_heading(self, fast_sampler):
        """The §7 claim: heading quantization error shrinks with N."""
        direction = 17.0  # off-grid for every array tested
        errors = {}
        for n in (4, 8):
            arr = uniform_circular_array(n)
            traj = line_trajectory((10.0, 8.0), direction, 0.5, 1.6)
            trace = fast_sampler.sample(traj, arr)
            res = Rim(RimConfig(max_lag=50)).process(trace)
            errors[n] = heading_error_deg(circular_mean(res.headings()), direction)
        # Worst-case quantization: 22.5 deg (N=4) vs 11.25 deg (N=8).
        assert errors[8] <= errors[4] + 1.0
        assert errors[8] <= 12.0
