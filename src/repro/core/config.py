"""Configuration of the RIM estimator — every knob in one place.

Defaults follow the paper's prototype: 200 Hz CSI, V ≈ 30 virtual antennas
(§6.2.7: "a number larger than 30 should suffice for a sampling rate of
200 Hz"), a lag window longer than the expected alignment delay (§3.2), and
the ~0.5 s short-period locality assumption.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RimConfig:
    """Tunable parameters of :class:`repro.core.rim.Rim`.

    Attributes:
        max_lag: W — alignment-matrix half window, in samples.  Must exceed
            Δd / v_min · f_s; 100 samples @ 200 Hz covers speeds down to
            ~0.05 m/s with λ/2 separation (§3.2).
        virtual_window: V — number of virtual massive antennas averaged in
            Eqn. 4.
        sanitize: Remove the per-packet linear phase (STO/SFO) first.
        movement_lag_seconds: l_mv of §4.1 — self-TRRS comparison lag.
        movement_threshold: Movement declared below this self-TRRS.
        movement_min_run: Debounce length (samples) for the movement mask.
        transition_weight: ω < 0 of the DP tracker (Eqn. 7).
        refine_subsample: Parabolic sub-sample lag refinement on/off.
        min_speed_lag: |lag| (samples) below which speed is not computed
            (lag quantization dominates; near-zero lags mean parallel or
            stationary geometry).
        pre_detect_stride: Row stride of the cheap pre-detection screen.
        pre_detect_keep: Maximum number of candidate groups kept.
        pre_detect_min_score: Minimum pre-detection prominence to survive.
        use_parallel_averaging: Average matrices of parallel isometric
            pairs before tracking (§4.2 optimization).
        quality_smoothing: Window (samples) for per-sample group quality.
        selection_hysteresis: Quality margin a challenger group needs.
        selection_min_quality: Below this quality no group is selected.
        speed_smoothing: Median-filter window (samples) on speeds.
        rotation_min_groups: Adjacent (ring) groups that must align
            simultaneously to declare rotation (hexagon: 3 exist).
        rotation_quality: Per-sample quality threshold for ring pairs —
            must sit above the prominence a DP path extracts from pure
            noise (~0.13 with the default V).
        rotation_pre_score: Strided pre-screen prominence a ring pair
            needs before the full rotation check runs.
        min_initial_distance_compensation: Add Δd to the integrated
            distance to reimburse the blind start-up period (§5,
            "Minimum initial motion").
        fine_direction: Refine headings beyond the array's discrete
            direction grid by interpolating the peak strengths of flanking
            pair groups (the §7 "angle resolution" extension).
        interpolate_loss: Bridge short packet-loss gaps with phase-aligned
            linear interpolation before processing (§5, §7).
        interpolation_max_gap: Longest gap (packets) to bridge.
        guard_policy: Input-guard behavior in front of the pipeline
            (``repro.robustness.guard``): "repair" fixes what it can,
            "drop" discards offending packets, "raise" refuses bad input,
            "off" bypasses the guard entirely.
        guard_min_liveness: RX chains with a smaller finite-packet fraction
            are declared dead and masked out of the alignment vote.
        guard_max_drift: Fractional clock drift tolerated before timestamps
            are resampled onto the nominal grid.
        health_min_pairs: Minimum usable antenna pairs; below this the
            degradation policy holds the last good speed and marks heading
            unresolved instead of estimating from too little geometry.
        kernel_backend: Which TRRS kernel backend serves the alignment hot
            path (``repro.perf``): "reference" (serial per-pair oracle),
            "batched" (one einsum per lag across all pairs, with row
            reuse), or "auto" — the ``RIM_KERNEL`` env var when set, else
            "batched".  All backends are numerically equivalent.
        kernel_threads: Thread-pool width for the batched backend's
            per-lag fan-out (the einsum inner products release the GIL);
            0 means serial.  Ignored by the reference backend.
        kernel_dtype: Precision of the batched TRRS and DP kernels:
            "float64" (default; bit-compatible with the reference
            oracle), "float32" (opt-in single precision — roughly 2x
            GEMM throughput within the error budget documented in
            ``docs/performance.md``), or "auto" — the
            ``RIM_KERNEL_DTYPE`` env var when set, else "float64".  The
            reference backend always computes in float64.
        stream_reuse: Let :class:`~repro.core.streaming.StreamingRim`
            reuse the previous block's TRRS rows instead of recomputing
            the context window (batched backend only; automatically
            invalidated when the guard repairs or resamples the context).
    """

    max_lag: int = 100
    virtual_window: int = 31
    sanitize: bool = True

    movement_lag_seconds: float = 0.1
    movement_threshold: float = 0.95
    movement_min_run: int = 10

    transition_weight: float = -2.0
    refine_subsample: bool = True
    min_speed_lag: float = 1.5

    pre_detect_stride: int = 8
    pre_detect_keep: int = 4
    pre_detect_min_score: float = 0.01

    use_parallel_averaging: bool = True
    quality_smoothing: int = 31
    selection_hysteresis: float = 0.02
    selection_min_quality: float = 0.05

    speed_smoothing: int = 15

    rotation_min_groups: int = 3
    rotation_quality: float = 0.25
    rotation_pre_score: float = 0.05

    min_initial_distance_compensation: bool = True

    fine_direction: bool = False

    interpolate_loss: bool = True
    interpolation_max_gap: int = 5

    guard_policy: str = "repair"
    guard_min_liveness: float = 0.2
    guard_max_drift: float = 0.01
    health_min_pairs: int = 1

    kernel_backend: str = "auto"
    kernel_threads: int = 0
    kernel_dtype: str = "auto"
    stream_reuse: bool = True

    def __post_init__(self) -> None:
        if self.max_lag < 2:
            raise ValueError("max_lag must be >= 2")
        if self.virtual_window < 1:
            raise ValueError("virtual_window must be >= 1")
        if not 0 < self.movement_threshold < 1:
            raise ValueError("movement_threshold must be in (0, 1)")
        if self.movement_min_run < 1:
            raise ValueError("movement_min_run must be >= 1")
        if self.transition_weight >= 0:
            raise ValueError("transition_weight must be negative")
        if self.min_speed_lag < 1:
            raise ValueError("min_speed_lag must be >= 1")
        if self.pre_detect_stride < 1:
            raise ValueError("pre_detect_stride must be >= 1")
        if self.pre_detect_keep < 1:
            raise ValueError("pre_detect_keep must be >= 1")
        if self.quality_smoothing < 1:
            raise ValueError("quality_smoothing must be >= 1")
        if self.speed_smoothing < 1:
            raise ValueError("speed_smoothing must be >= 1")
        if self.interpolation_max_gap < 0:
            raise ValueError(
                f"interpolation_max_gap must be >= 0 (packets), "
                f"got {self.interpolation_max_gap}"
            )
        if self.guard_policy not in ("off", "raise", "drop", "repair"):
            raise ValueError(
                f"guard_policy must be one of 'off', 'raise', 'drop', 'repair', "
                f"got {self.guard_policy!r}"
            )
        if not 0.0 <= self.guard_min_liveness <= 1.0:
            raise ValueError("guard_min_liveness must be in [0, 1]")
        if self.guard_max_drift <= 0:
            raise ValueError("guard_max_drift must be positive")
        if self.health_min_pairs < 0:
            raise ValueError("health_min_pairs must be >= 0")
        if not self.kernel_backend or not isinstance(self.kernel_backend, str):
            raise ValueError(
                f"kernel_backend must be a backend name or 'auto', "
                f"got {self.kernel_backend!r}"
            )
        if self.kernel_threads < 0:
            raise ValueError("kernel_threads must be >= 0")
        if self.kernel_dtype not in ("auto", "float64", "float32"):
            raise ValueError(
                f"kernel_dtype must be 'float64', 'float32', or 'auto', "
                f"got {self.kernel_dtype!r}"
            )
