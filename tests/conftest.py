"""Shared fixtures: fast, small-scale scenarios for unit/integration tests.

Full-scale workloads live in benchmarks/; tests use reduced scatterer
counts, grouped tone grids, and short traces so the suite stays fast while
still exercising every code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.geometry import hexagonal_array, l_shaped_array, linear_array
from repro.channel.impairments import ImpairmentConfig, clean
from repro.channel.model import MultipathChannel
from repro.channel.ofdm import make_grid
from repro.channel.sampler import CsiSampler, ap_antenna_positions
from repro.channel.scatterers import ring_field, uniform_field


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_grid():
    """A 30-tone grouped grid (Intel-5300 style) — 4x faster than full."""
    return make_grid().grouped(30)


@pytest.fixture(scope="session")
def fast_channel(small_grid):
    """A compact rich-scattering channel for pipeline tests."""
    rng = np.random.default_rng(777)
    field = uniform_field(20.0, 15.0, n_scatterers=60, rng=rng)
    return MultipathChannel(scatterers=field, grid=small_grid, los_gain=0.5)


@pytest.fixture(scope="session")
def fast_sampler(fast_channel):
    rng = np.random.default_rng(778)
    return CsiSampler(
        channel=fast_channel,
        tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=2),
        impairments=ImpairmentConfig(snr_db=25.0),
        rng=rng,
    )


@pytest.fixture(scope="session")
def clean_sampler(fast_channel):
    """Sampler with no impairments at all (for exactness tests)."""
    rng = np.random.default_rng(779)
    return CsiSampler(
        channel=fast_channel,
        tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=2),
        impairments=clean(),
        rng=rng,
    )


@pytest.fixture(scope="session")
def three_antenna():
    return linear_array(3)


@pytest.fixture(scope="session")
def hexagon():
    return hexagonal_array()


@pytest.fixture(scope="session")
def l_array():
    return l_shaped_array()


@pytest.fixture(scope="session")
def line_trace(fast_sampler, three_antenna):
    """A cached 1 m line trace at 0.5 m/s along the array axis."""
    from repro.motionsim.profiles import line_trajectory

    traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
    return fast_sampler.sample(traj, three_antenna)


@pytest.fixture(scope="session")
def hex_line_trace(fast_sampler, hexagon):
    """A cached hexagonal-array trace moving at +30 degrees."""
    from repro.motionsim.profiles import line_trajectory

    traj = line_trajectory((10.0, 8.0), 30.0, 0.5, 1.6)
    return fast_sampler.sample(traj, hexagon)
