"""Unit tests for the TRRS metric (Eqns. 1-4)."""

import numpy as np
import pytest

from repro.core.trrs import (
    average_trrs,
    massive_trrs,
    normalize_csi,
    trrs_cfr,
    trrs_cir,
    trrs_series,
)


def _rand_cfr(rng, *shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestTrrsCfr:
    def test_identical_vectors_give_one(self, rng):
        h = _rand_cfr(rng, 32)
        assert trrs_cfr(h, h) == pytest.approx(1.0)

    def test_scale_invariance(self, rng):
        """κ = 1 iff H1 = c·H2 — the property that kills the PLL phase."""
        h = _rand_cfr(rng, 32)
        c = 3.7 * np.exp(1j * 1.234)
        assert trrs_cfr(h, c * h) == pytest.approx(1.0)

    def test_orthogonal_vectors_give_zero(self):
        h1 = np.zeros(8, dtype=complex)
        h2 = np.zeros(8, dtype=complex)
        h1[0] = 1.0
        h2[1] = 1.0
        assert trrs_cfr(h1, h2) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        h1 = _rand_cfr(rng, 32)
        h2 = _rand_cfr(rng, 32)
        assert trrs_cfr(h1, h2) == pytest.approx(trrs_cfr(h2, h1))

    def test_bounded(self, rng):
        for _ in range(50):
            h1 = _rand_cfr(rng, 16)
            h2 = _rand_cfr(rng, 16)
            v = trrs_cfr(h1, h2)
            assert 0.0 <= v <= 1.0

    def test_zero_vector_gives_zero(self, rng):
        h = _rand_cfr(rng, 16)
        assert trrs_cfr(np.zeros(16, dtype=complex), h) == pytest.approx(0.0)

    def test_batched(self, rng):
        h1 = _rand_cfr(rng, 5, 16)
        h2 = _rand_cfr(rng, 5, 16)
        out = trrs_cfr(h1, h2)
        assert out.shape == (5,)
        for k in range(5):
            assert out[k] == pytest.approx(trrs_cfr(h1[k], h2[k]))

    def test_nan_propagates(self, rng):
        h1 = _rand_cfr(rng, 16)
        h2 = _rand_cfr(rng, 16)
        h1[3] = np.nan
        assert np.isnan(trrs_cfr(h1, h2))


class TestTrrsCir:
    def test_identical_cirs_give_one(self, rng):
        h = _rand_cfr(rng, 16)
        assert trrs_cir(h, h) == pytest.approx(1.0)

    def test_delay_invariance(self, rng):
        """Eqn. 1 maxes over convolution taps, so pure delays don't hurt."""
        h = np.zeros(16, dtype=complex)
        h[:4] = _rand_cfr(rng, 4)
        delayed = np.roll(h, 3)
        assert trrs_cir(h, delayed) == pytest.approx(1.0, abs=1e-9)

    def test_matches_cfr_form_for_impulses(self):
        """For single-tap CIRs both definitions coincide."""
        h1 = np.zeros(8, dtype=complex)
        h2 = np.zeros(8, dtype=complex)
        h1[0] = 1.0
        h2[0] = 0.5 + 0.5j
        assert trrs_cir(h1, h2) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            trrs_cir(_rand_cfr(rng, 8), _rand_cfr(rng, 9))

    def test_zero_denominator(self):
        assert trrs_cir(np.zeros(4, dtype=complex), np.zeros(4, dtype=complex)) == 0.0

    def test_bounded(self, rng):
        for _ in range(20):
            v = trrs_cir(_rand_cfr(rng, 12), _rand_cfr(rng, 12))
            assert 0.0 <= v <= 1.0


class TestAverageTrrs:
    def test_averages_over_tx(self, rng):
        h_i = _rand_cfr(rng, 3, 16)
        h_j = _rand_cfr(rng, 3, 16)
        expected = np.mean([trrs_cfr(h_i[k], h_j[k]) for k in range(3)])
        assert average_trrs(h_i, h_j) == pytest.approx(expected)

    def test_identical_gives_one(self, rng):
        h = _rand_cfr(rng, 3, 16)
        assert average_trrs(h, h) == pytest.approx(1.0)

    def test_per_tx_phase_immunity(self, rng):
        """Unsynchronized antennas: arbitrary per-TX phases are harmless."""
        h = _rand_cfr(rng, 3, 16)
        phases = np.exp(1j * rng.uniform(0, 2 * np.pi, (3, 1)))
        assert average_trrs(h, h * phases) == pytest.approx(1.0)


class TestMassiveTrrs:
    def test_window_average(self, rng):
        p_i = _rand_cfr(rng, 5, 2, 16)
        p_j = _rand_cfr(rng, 5, 2, 16)
        expected = np.mean([average_trrs(p_i[v], p_j[v]) for v in range(5)])
        assert massive_trrs(p_i, p_j) == pytest.approx(expected)

    def test_skips_nan_snapshots(self, rng):
        p_i = _rand_cfr(rng, 4, 2, 16)
        p_j = _rand_cfr(rng, 4, 2, 16)
        p_i[1] = np.nan
        v = massive_trrs(p_i, p_j)
        expected = np.mean(
            [average_trrs(p_i[k], p_j[k]) for k in (0, 2, 3)]
        )
        assert v == pytest.approx(expected)

    def test_all_nan_returns_nan(self):
        p = np.full((3, 2, 8), np.nan, dtype=complex)
        assert np.isnan(massive_trrs(p, p))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            massive_trrs(_rand_cfr(rng, 3, 2, 8), _rand_cfr(rng, 4, 2, 8))


class TestNormalize:
    def test_unit_norm(self, rng):
        h = _rand_cfr(rng, 5, 2, 16)
        out = normalize_csi(h)
        norms = np.sqrt((np.abs(out) ** 2).sum(axis=-1))
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_normalized_inner_product_is_trrs(self, rng):
        h1 = _rand_cfr(rng, 16)
        h2 = _rand_cfr(rng, 16)
        n1 = normalize_csi(h1)
        n2 = normalize_csi(h2)
        assert np.abs(np.vdot(n1, n2)) ** 2 == pytest.approx(trrs_cfr(h1, h2))

    def test_zero_vector_becomes_nan(self):
        out = normalize_csi(np.zeros((2, 4), dtype=complex))
        assert np.isnan(out).all()


class TestTrrsSeries:
    def test_zero_lag(self, rng):
        a = _rand_cfr(rng, 10, 2, 8)
        out = trrs_series(a, a, 0)
        np.testing.assert_allclose(out, 1.0, rtol=1e-6)

    def test_positive_lag_alignment(self, rng):
        a = _rand_cfr(rng, 10, 2, 8)
        b = np.roll(a, 2, axis=0)  # b(t) = a(t-2)
        out = trrs_series(a, b, -2)  # compare a(t) with b(t+2) = a(t)
        np.testing.assert_allclose(out[:-2][~np.isnan(out[:-2])], 1.0, rtol=1e-6)

    def test_nan_borders(self, rng):
        a = _rand_cfr(rng, 10, 2, 8)
        out = trrs_series(a, a, 3)
        assert np.isnan(out[:3]).all()
        assert np.isfinite(out[3:]).all()

    def test_lag_exceeding_length(self, rng):
        a = _rand_cfr(rng, 5, 2, 8)
        out = trrs_series(a, a, 10)
        assert np.isnan(out).all()

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            trrs_series(_rand_cfr(rng, 5, 2, 8), _rand_cfr(rng, 6, 2, 8), 0)
