"""Binary layout of the chunked trace store (see ``docs/storage.md``).

A store is a directory::

    mystore/
      manifest.json        # geometry, dtype/shape, trajectory, metadata
      chunk-00000000.rimc  # fixed-size CSI sample chunks, one file each
      chunk-00000001.rimc
      ...

Each chunk file is a 36-byte little-endian header followed by the
payload.  Header layout (``<4sHHQIIQI``):

======  ====  =========  ================================================
offset  size  field      meaning
======  ====  =========  ================================================
0       4     magic      ``b"RIMC"``
4       2     version    chunk format version (this build writes 1)
6       2     flags      reserved, must be 0
8       8     seq        monotonic chunk sequence number (0-based)
16      4     n_samples  CSI packets in this chunk
20      4     reserved   must be 0
24      8     payload    payload length in bytes
32      4     crc32      CRC-32 (zlib) of the payload bytes
======  ====  =========  ================================================

Payload = ``times`` (``n_samples`` float64) immediately followed by
``data`` (``n_samples × n_rx × n_tx × S`` complex64, C order).  The
per-sample shape and dtype live in the sidecar manifest, so a chunk is
self-describing only together with its store — headers stay fixed-size
and cheap to scan.

Corruption detected while decoding raises :class:`StoreCorruptionError`,
which is also a :class:`~repro.robustness.guard.GuardError` so the
``raise`` guard policy means the same thing at the store layer as it
does in front of the estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.binfmt import HeaderCodec, crc32_of, verify_crc32
from repro.robustness.guard import GuardError

MAGIC = b"RIMC"
FORMAT_VERSION = 1
SUPPORTED_CHUNK_VERSIONS = (1,)

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "rim-trace-store"
MANIFEST_VERSION = 1
SUPPORTED_MANIFEST_VERSIONS = (1,)

CHUNK_PREFIX = "chunk-"
CHUNK_SUFFIX = ".rimc"
CHUNK_GLOB = f"{CHUNK_PREFIX}*{CHUNK_SUFFIX}"

SAMPLE_DTYPE = np.complex64
TIME_DTYPE = np.float64


class StoreError(ValueError):
    """A malformed store that no policy can (or should) paper over."""


class StoreCorruptionError(StoreError, GuardError):
    """Integrity fault (CRC mismatch, torn chunk, bad sequence number).

    Subclasses :class:`~repro.robustness.guard.GuardError` so the store's
    ``raise`` policy composes with existing ``except GuardError`` handlers.
    """


# Header layout shared with the module docstring table; the codec is the
# common implementation from repro.binfmt (also behind repro.net framing).
HEADER_CODEC = HeaderCodec(
    MAGIC, "<4sHHQIIQI", SUPPORTED_CHUNK_VERSIONS, error_cls=StoreCorruptionError
)
HEADER_STRUCT = HEADER_CODEC.struct
HEADER_SIZE = HEADER_CODEC.size  # 36 bytes


@dataclass(frozen=True)
class ChunkHeader:
    """Decoded fixed-size chunk header."""

    seq: int
    n_samples: int
    payload_bytes: int
    payload_crc: int
    version: int = FORMAT_VERSION
    flags: int = 0


def chunk_filename(seq: int) -> str:
    """Canonical file name of chunk ``seq`` (sortable, zero-padded)."""
    if seq < 0:
        raise ValueError(f"chunk sequence number must be >= 0, got {seq}")
    return f"{CHUNK_PREFIX}{seq:08d}{CHUNK_SUFFIX}"


def seq_from_filename(name: str) -> int:
    """Inverse of :func:`chunk_filename`; raises StoreError on mismatch."""
    if not (name.startswith(CHUNK_PREFIX) and name.endswith(CHUNK_SUFFIX)):
        raise StoreError(f"{name!r} is not a chunk file name")
    digits = name[len(CHUNK_PREFIX) : -len(CHUNK_SUFFIX)]
    if not digits.isdigit():
        raise StoreError(f"{name!r} carries a non-numeric sequence number")
    return int(digits)


def payload_nbytes(n_samples: int, sample_shape: Tuple[int, ...]) -> int:
    """Exact payload size of a chunk with ``n_samples`` packets."""
    per_sample = int(np.prod(sample_shape)) * np.dtype(SAMPLE_DTYPE).itemsize
    return n_samples * (np.dtype(TIME_DTYPE).itemsize + per_sample)


def pack_chunk(seq: int, data: np.ndarray, times: np.ndarray) -> bytes:
    """Encode one chunk (header + payload) ready to append to a store.

    Args:
        seq: Monotonic chunk sequence number.
        data: (n, n_rx, n_tx, S) complex CSI samples.
        times: (n,) float64 packet timestamps.
    """
    data = np.ascontiguousarray(data, dtype=SAMPLE_DTYPE)
    times = np.ascontiguousarray(times, dtype=TIME_DTYPE)
    if data.ndim != 4:
        raise StoreError(f"chunk data must be (n, n_rx, n_tx, S), got {data.shape}")
    if times.shape != (data.shape[0],):
        raise StoreError(
            f"chunk times must be ({data.shape[0]},), got {times.shape}"
        )
    payload = times.tobytes() + data.tobytes()
    header = HEADER_CODEC.pack(
        FORMAT_VERSION,
        0,
        seq,
        data.shape[0],
        0,
        len(payload),
        crc32_of(payload),
    )
    return header + payload


def unpack_header(buf: bytes, where: str = "chunk") -> ChunkHeader:
    """Decode and validate a chunk header.

    Raises:
        StoreCorruptionError: On short reads, bad magic, or an unknown
            chunk format version.
    """
    version, flags, seq, n_samples, reserved, payload_bytes, crc = (
        HEADER_CODEC.unpack(buf, where=where)
    )
    if flags != 0 or reserved != 0:
        raise StoreCorruptionError(
            f"{where}: nonzero reserved header fields "
            f"(flags={flags}, reserved={reserved})"
        )
    return ChunkHeader(
        seq=int(seq),
        n_samples=int(n_samples),
        payload_bytes=int(payload_bytes),
        payload_crc=int(crc),
        version=int(version),
        flags=int(flags),
    )


def unpack_payload(
    header: ChunkHeader,
    payload: bytes,
    sample_shape: Tuple[int, ...],
    where: str = "chunk",
    copy: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode a chunk payload, verifying length and CRC-32.

    Args:
        header: The chunk's decoded header.
        payload: ``header.payload_bytes`` bytes (bytes or memoryview —
            a memoryview keeps mmap-backed reads zero-copy).
        sample_shape: Per-sample (n_rx, n_tx, S) from the store manifest.
        where: Context for error messages.
        copy: Copy the decoded arrays out of the buffer (safe default);
            False returns read-only views into ``payload`` (mmap mode).

    Returns:
        ``(data, times)`` — (n, *sample_shape) complex64 and (n,) float64.

    Raises:
        StoreCorruptionError: On length mismatch or CRC failure.
    """
    n = header.n_samples
    expected = payload_nbytes(n, sample_shape)
    if header.payload_bytes != expected:
        raise StoreCorruptionError(
            f"{where}: payload length {header.payload_bytes} does not match "
            f"{n} samples of shape {sample_shape} ({expected} bytes)"
        )
    if len(payload) != header.payload_bytes:
        raise StoreCorruptionError(
            f"{where}: torn payload ({len(payload)} of "
            f"{header.payload_bytes} bytes)"
        )
    verify_crc32(
        header.payload_crc, payload, error_cls=StoreCorruptionError, where=where
    )
    split = n * np.dtype(TIME_DTYPE).itemsize
    times = np.frombuffer(payload, dtype=TIME_DTYPE, count=n)
    data = np.frombuffer(payload, dtype=SAMPLE_DTYPE, offset=split).reshape(
        (n, *sample_shape)
    )
    if copy:
        return data.copy(), times.copy()
    return data, times
