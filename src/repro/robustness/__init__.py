"""Fault-tolerant CSI ingestion: fault injection, guarding, health.

The paper's pitch is that RIM keeps working where other modalities fail
(§1, §6.2.9); this package makes the *pipeline* live up to that on messy
input.  ``faults`` synthesizes realistic ingestion faults, ``guard``
validates/repairs input in front of both estimators, and ``health``
reports what happened so callers can trust (or distrust) each estimate.
"""

from repro.robustness.faults import FaultPlan
from repro.robustness.guard import GuardError, GuardReport, StreamGuard, guard_trace
from repro.robustness.health import (
    HealthReport,
    alignment_confidence,
    apply_degradation,
    build_health,
)

__all__ = [
    "FaultPlan",
    "GuardError",
    "GuardReport",
    "HealthReport",
    "StreamGuard",
    "alignment_confidence",
    "apply_degradation",
    "build_health",
    "guard_trace",
]
