"""One runner per micro-benchmark figure (§6.2, Figs. 4-17).

Each ``run_figXX`` function regenerates the data behind a paper figure on
the simulated testbed and returns a dict holding both the measured series
and the paper's reference numbers, so the benchmark harness can print
paper-vs-measured rows.  Workload sizes accept a ``quick`` flag: the quick
variants keep the workload shape but shrink repetitions for CI-scale runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arrays.geometry import hexagonal_array, linear_array
from repro.arrays.pairs import parallel_groups
from repro.core.alignment import alignment_matrix
from repro.core.config import RimConfig
from repro.core.movement import detect_movement, self_trrs_indicator
from repro.core.rim import Rim
from repro.core.sanitize import sanitize_trace
from repro.core.tracking import track_peaks
from repro.core.trrs import normalize_csi, trrs_series
from repro.eval.metrics import heading_error_deg
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.imu.deadreckoning import (
    accelerometer_movement_indicator,
    gyro_rotation_angle,
    gyroscope_movement_indicator,
)
from repro.imu.sensors import ImuSimulator
from repro.motionsim.profiles import (
    back_and_forth_trajectory,
    line_trajectory,
    rotation_trajectory,
    square_trajectory,
    stop_and_go_trajectory,
)


def run_fig4_trrs_resolution(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 4: spatial resolution of TRRS (self- and cross-antenna).

    Paper: self-TRRS drops sharply within a few mm and decays monotonically
    within ~1 cm; cross-TRRS keeps a clear peak at the antenna separation,
    at lower absolute values (hardware heterogeneity).
    """
    bed = make_testbed(seed=seed)
    speed = 0.2
    duration = 2.0 if quick else 4.0
    traj = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, speed, duration)
    trace = bed.sampler.sample(traj, linear_array(3))
    data = sanitize_trace(trace.data)
    norm = normalize_csi(data)
    fs = trace.sampling_rate
    mm_per_lag = speed / fs * 1000.0

    max_lag = int(round(40.0 / mm_per_lag))
    lags = np.arange(0, max_lag + 1)
    self_curves = {}
    for antenna in range(3):
        curve = [
            float(np.nanmean(trrs_series(norm[:, antenna], norm[:, antenna], int(l))))
            for l in lags
        ]
        self_curves[antenna] = np.asarray(curve)

    cross_lags = np.arange(-max_lag // 2, max_lag + 1)
    cross_curve = np.asarray(
        [
            float(np.nanmean(trrs_series(norm[:, 0], norm[:, 1], int(l))))
            for l in cross_lags
        ]
    )

    distances_mm = lags * mm_per_lag
    cross_mm = cross_lags * mm_per_lag
    sep_mm = trace.array.separation(0, 1) * 1000.0
    peak_at = float(cross_mm[int(np.nanargmax(cross_curve))])

    curve0 = self_curves[0]
    drop_5mm = float(curve0[0] - np.interp(5.0, distances_mm, curve0))
    return {
        "self_distances_mm": distances_mm,
        "self_curves": self_curves,
        "cross_distances_mm": cross_mm,
        "cross_curve": cross_curve,
        "measured": {
            "self_drop_within_5mm": drop_5mm,
            "cross_peak_at_mm": peak_at,
            "expected_peak_mm": sep_mm,
            "cross_peak_value": float(np.nanmax(cross_curve)),
        },
        "paper": {
            "self_drop_within_5mm": 0.3,
            "peak_tolerance_mm": 5.0,
            "note": "TRRS decays within ~1cm; cross peak at antenna distance",
        },
    }


def run_fig5_alignment_matrix(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 5: alignment matrices over a square trajectory.

    Paper: the aligned pairs of the hexagonal array take turns as the
    square's legs change direction.
    """
    bed = make_testbed(seed=seed)
    side = 0.8 if quick else 1.5
    traj = square_trajectory(MEASUREMENT_SPOTS[1], side=side, speed=0.5)
    hexa = hexagonal_array()
    trace = bed.sampler.sample(traj, hexa)
    norm = normalize_csi(sanitize_trace(trace.data))
    fs = trace.sampling_rate
    cfg = RimConfig(max_lag=60)

    t = trace.n_samples
    leg = t // 4
    legs = [(k * leg, min(t, (k + 1) * leg)) for k in range(4)]
    leg_directions = [0.0, 90.0, 180.0, -90.0]

    groups = parallel_groups(hexa)
    matrices = []
    for group in groups:
        pair = group[0]
        m = alignment_matrix(
            norm[:, pair.i],
            norm[:, pair.j],
            max_lag=cfg.max_lag,
            virtual_window=cfg.virtual_window,
            sampling_rate=fs,
            pair=(pair.i, pair.j),
            normalized=True,
        )
        matrices.append((group, m))

    # Which group shows the strongest peak on each leg?
    winners = []
    for start, stop in legs:
        best_group, best_prom = None, -np.inf
        for group, m in matrices:
            rows = m.values[start:stop]
            finite = np.isfinite(rows).all(axis=1)
            if not finite.any():
                continue
            sel = rows[finite]
            prom = float((sel.max(axis=1) - np.median(sel, axis=1)).mean())
            if prom > best_prom:
                best_group, best_prom = group, prom
        winners.append(best_group)

    correct = 0
    for direction, group in zip(leg_directions, winners):
        if group is None:
            continue
        axis = np.rad2deg(group[0].axis_angle)
        diff = min(
            abs((axis - direction + 180) % 360 - 180),
            abs((axis + 180 - direction + 180) % 360 - 180),
        )
        if diff < 1.0:
            correct += 1

    return {
        "matrices": [(tuple((p.i, p.j) for p in g), m) for g, m in matrices],
        "legs": legs,
        "measured": {"legs_with_correct_aligned_group": correct, "n_legs": 4},
        "paper": {"note": "aligned pairs alternate with the square's legs"},
    }


def run_fig6_deviated_retracing(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 6: alignment under deviated retracing.

    Paper: peaks get weaker with deviation but remain evident up to ~15°.
    """
    bed = make_testbed(seed=seed)
    deviations = (
        [0.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0] if not quick else [0.0, 15.0, 45.0]
    )
    arr = linear_array(3)
    cfg = RimConfig(max_lag=40)
    peaks = {}
    for dev in deviations:
        traj = line_trajectory(
            MEASUREMENT_SPOTS[0], dev, 0.5, 1.6, orientation_deg=0.0
        )
        trace = bed.sampler.sample(traj, arr)
        norm = normalize_csi(sanitize_trace(trace.data))
        m = alignment_matrix(
            norm[:, 0],
            norm[:, 1],
            max_lag=cfg.max_lag,
            virtual_window=cfg.virtual_window,
            sampling_rate=trace.sampling_rate,
            normalized=True,
        )
        rows = m.values[cfg.max_lag :]
        finite = np.isfinite(rows).all(axis=1)
        sel = rows[finite]
        prominence = float((sel.max(axis=1) - np.median(sel, axis=1)).mean())
        peaks[dev] = prominence

    return {
        "measured": {"prominence_by_deviation": peaks},
        "paper": {
            "note": "weaker but evident peaks; tolerates ~15 deg deviation",
            "max_tolerated_deviation_deg": 15.0,
        },
    }


def run_fig7_movement_detection(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 7: movement detection, RIM vs accelerometer vs gyroscope.

    Paper: RIM cleanly detects the transient stops that both inertial
    sensors miss (constant-velocity motion has no acceleration; straight
    motion has no rotation).
    """
    bed = make_testbed(seed=seed)
    moves = [2.0, 1.5, 2.0, 1.5] if not quick else [1.2, 1.0, 1.2]
    pauses = [1.0, 1.0, 1.0] if not quick else [0.8, 0.8]
    traj = stop_and_go_trajectory(
        MEASUREMENT_SPOTS[3], 0.0, 0.6, moves, pauses
    )
    trace = bed.sampler.sample(traj, linear_array(3))
    data = sanitize_trace(trace.data)
    fs = trace.sampling_rate
    cfg = RimConfig()

    indicator = self_trrs_indicator(
        data[:, 0], int(round(cfg.movement_lag_seconds * fs)), virtual_window=7
    )
    detection = detect_movement(indicator, threshold=cfg.movement_threshold)

    truth_moving = traj.speeds() > 0.05
    rim_accuracy = float((detection.moving == truth_moving).mean())

    imu = ImuSimulator(rng=np.random.default_rng(seed)).simulate(traj)
    acc_ind = accelerometer_movement_indicator(imu)
    gyr_ind = gyroscope_movement_indicator(imu)
    # Give the IMU baselines their best possible threshold (oracle sweep).
    acc_accuracy = _best_threshold_accuracy(acc_ind, truth_moving)
    gyr_accuracy = _best_threshold_accuracy(gyr_ind, truth_moving)

    return {
        "indicator": indicator,
        "truth_moving": truth_moving,
        "measured": {
            "rim_accuracy": rim_accuracy,
            "accelerometer_accuracy": acc_accuracy,
            "gyroscope_accuracy": gyr_accuracy,
        },
        "paper": {"note": "RIM robust; Acc and Gyr both miss transient stops"},
    }


def _best_threshold_accuracy(indicator: np.ndarray, truth: np.ndarray) -> float:
    best = 0.0
    for q in np.linspace(0.05, 0.95, 19):
        thr = np.quantile(indicator, q)
        best = max(best, float(((indicator > thr) == truth).mean()))
    return best


def run_fig8_peak_tracking(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 8: DP peak tracking through a forward-then-backward move.

    Paper: the tracked lag path flips sign with the direction reversal and
    stays smooth despite noise.
    """
    bed = make_testbed(seed=seed)
    dist = 0.8 if quick else 1.5
    speed = 0.4
    traj = back_and_forth_trajectory(MEASUREMENT_SPOTS[4], 0.0, dist, speed)
    arr = linear_array(3)
    trace = bed.sampler.sample(traj, arr)
    norm = normalize_csi(sanitize_trace(trace.data))
    fs = trace.sampling_rate
    cfg = RimConfig(max_lag=40)
    m = alignment_matrix(
        norm[:, 0],
        norm[:, 1],
        max_lag=cfg.max_lag,
        virtual_window=cfg.virtual_window,
        sampling_rate=fs,
        normalized=True,
    )
    path = track_peaks(m, transition_weight=cfg.transition_weight)

    expected_lag = arr.separation(0, 1) * fs / speed
    t = trace.n_samples
    forward = slice(int(0.15 * t), int(0.4 * t))
    backward = slice(int(0.65 * t), int(0.9 * t))
    fwd_lag = float(np.median(path.lags[forward]))
    bwd_lag = float(np.median(path.lags[backward]))

    return {
        "lags": path.lags,
        "matrix": m,
        "measured": {
            "forward_lag": fwd_lag,
            "backward_lag": bwd_lag,
            "expected_abs_lag": expected_lag,
            "sign_flip_detected": bool(fwd_lag * bwd_lag < 0),
        },
        "paper": {"note": "peaks tracked robustly; sign flips on reversal"},
    }


def run_fig11_distance_accuracy(
    seed: int = 0,
    quick: bool = False,
    n_desktop: Optional[int] = None,
    n_cart: Optional[int] = None,
) -> Dict:
    """Fig. 11: moving-distance accuracy (desktop vs cart, LOS vs NLOS).

    Paper: 2.3 cm median (desktop), 8.4 cm median (cart); LOS 7.3 cm vs
    NLOS 8.6 cm — i.e. NLOS barely hurts.
    """
    n_desktop = n_desktop or (2 if quick else 6)
    n_cart = n_cart or (2 if quick else 6)
    arr = linear_array(3)

    desktop_errors: List[float] = []
    for k in range(n_desktop):
        bed = make_testbed(seed=seed + k)
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        traj = line_trajectory(spot, 0.0, 0.25, 4.0)
        trace = bed.sampler.sample(traj, arr)
        res = Rim(RimConfig(max_lag=60)).process(trace)
        desktop_errors.append(abs(res.total_distance - traj.total_distance))

    cart_errors: List[float] = []
    cart_los: List[float] = []
    cart_nlos: List[float] = []
    cart_len = 4.0 if quick else 10.0
    for k in range(n_cart):
        bed = make_testbed(seed=seed + 100 + k)
        spot = MEASUREMENT_SPOTS[(k * 2) % len(MEASUREMENT_SPOTS)]
        direction = (k * 45.0) % 180.0
        traj = line_trajectory(spot, direction, 1.0, cart_len, orientation_deg=direction)
        trace = bed.sampler.sample(traj, arr)
        res = Rim(RimConfig(max_lag=60)).process(trace)
        err = abs(res.total_distance - traj.total_distance)
        cart_errors.append(err)
        mid = traj.positions[traj.n_samples // 2]
        (cart_los if bed.has_los(mid) else cart_nlos).append(err)

    return {
        "desktop_errors": desktop_errors,
        "cart_errors": cart_errors,
        "measured": {
            "desktop_median_cm": 100 * float(np.median(desktop_errors)),
            "cart_median_cm": 100 * float(np.median(cart_errors)),
            "cart_los_median_cm": 100 * float(np.median(cart_los)) if cart_los else float("nan"),
            "cart_nlos_median_cm": 100 * float(np.median(cart_nlos)) if cart_nlos else float("nan"),
            "cart_p90_cm": 100 * float(np.percentile(cart_errors, 90)),
        },
        "paper": {
            "desktop_median_cm": 2.3,
            "cart_median_cm": 8.4,
            "cart_los_median_cm": 7.3,
            "cart_nlos_median_cm": 8.6,
            "cart_p90_cm": 15.0,
        },
    }


def run_fig12_heading_accuracy(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 12: heading-direction accuracy across directions.

    Paper: 6.1° mean error; >90% of errors within 10°; estimates snap to
    the 30°-resolution direction grid of the hexagonal array.
    """
    step = 30 if quick else 10
    directions = list(range(-90, 1, step)) + list(range(90, 181, step))
    hexa = hexagonal_array()
    errors: List[float] = []
    per_direction: Dict[int, float] = {}
    for k, direction in enumerate(directions):
        bed = make_testbed(seed=seed + k)
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        traj = line_trajectory(spot, float(direction), 0.5, 2.0)
        trace = bed.sampler.sample(traj, hexa)
        res = Rim(RimConfig(max_lag=60)).process(trace)
        h = res.headings()
        h = h[np.isfinite(h)]
        if h.size == 0:
            err = 180.0
        else:
            mean_heading = np.arctan2(np.mean(np.sin(h)), np.mean(np.cos(h)))
            err = heading_error_deg(float(mean_heading), float(direction))
        errors.append(err)
        per_direction[direction] = err

    errors_arr = np.asarray(errors)
    return {
        "per_direction": per_direction,
        "errors": errors,
        "measured": {
            "mean_error_deg": float(errors_arr.mean()),
            "within_10deg_fraction": float((errors_arr <= 10.0).mean()),
        },
        "paper": {"mean_error_deg": 6.1, "within_10deg_fraction": 0.9},
    }


def run_fig13_rotation_accuracy(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 13: rotating-angle accuracy, RIM vs gyroscope.

    Paper: ~30.1° median error for RIM (≈1.3 cm of arc); the gyroscope is
    better at this task.
    """
    angles = [90, 180, 270] if quick else [30, 60, 90, 120, 150, 180, 270, 360]
    reps = 1 if quick else 3
    hexa = hexagonal_array()
    rim_errors: List[float] = []
    gyro_errors: List[float] = []
    per_angle: Dict[int, List[float]] = {a: [] for a in angles}
    for k, angle in enumerate(angles):
        for r in range(reps):
            bed = make_testbed(seed=seed + 10 * k + r)
            spot = MEASUREMENT_SPOTS[(k + r) % len(MEASUREMENT_SPOTS)]
            traj = rotation_trajectory(spot, float(angle), angular_speed_deg=120.0)
            trace = bed.sampler.sample(traj, hexa)
            res = Rim(RimConfig(max_lag=150)).process(trace)
            rim_err = abs(np.rad2deg(res.total_rotation) - angle)
            rim_errors.append(rim_err)
            per_angle[angle].append(rim_err)

            imu = ImuSimulator(rng=np.random.default_rng(seed + 997 * k + r)).simulate(traj)
            gyro_errors.append(abs(np.rad2deg(gyro_rotation_angle(imu)) - angle))

    arc_error_cm = np.median(rim_errors) / 360.0 * (2 * np.pi * hexa.radius) * 100.0
    return {
        "per_angle": per_angle,
        "measured": {
            "rim_median_error_deg": float(np.median(rim_errors)),
            "gyro_median_error_deg": float(np.median(gyro_errors)),
            "rim_arc_error_cm": float(arc_error_cm),
            "gyro_beats_rim": bool(np.median(gyro_errors) < np.median(rim_errors)),
        },
        "paper": {
            "rim_median_error_deg": 30.1,
            "rim_arc_error_cm": 1.3,
            "gyro_beats_rim": True,
        },
    }


def run_fig14_ap_location(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 14: distance accuracy vs AP placement.

    Paper: consistently <10 cm median for every AP site, LOS or through
    multiple walls — RIM works wherever AP signals reach.
    """
    sites = [1, 4] if quick else [1, 2, 3, 4, 5, 6]
    reps = 2 if quick else 3
    arr = linear_array(3)
    medians: Dict[int, float] = {}
    for site in sites:
        errors = []
        for r in range(reps):
            bed = make_testbed(seed=seed + r, ap_site=site)
            spot = MEASUREMENT_SPOTS[r % len(MEASUREMENT_SPOTS)]
            traj = line_trajectory(spot, 0.0, 0.5, 3.0)
            trace = bed.sampler.sample(traj, arr)
            res = Rim(RimConfig(max_lag=60)).process(trace)
            errors.append(abs(res.total_distance - traj.total_distance))
        medians[site] = 100 * float(np.median(errors))

    return {
        "measured": {"median_error_cm_by_site": medians},
        "paper": {"all_sites_median_below_cm": 10.0},
    }


def run_fig15_accumulation(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 15: error vs movement distance.

    Paper: median errors 3-14 cm over 1-10 m — no significant
    accumulation, unlike inertial sensors.
    """
    reps = 2 if quick else 5
    length = 4.0 if quick else 10.0
    checkpoints = np.arange(1.0, length + 0.5, 1.0)
    arr = linear_array(3)
    errors_by_distance: Dict[float, List[float]] = {c: [] for c in checkpoints}
    for r in range(reps):
        bed = make_testbed(seed=seed + r)
        spot = MEASUREMENT_SPOTS[r % len(MEASUREMENT_SPOTS)]
        direction = 30.0 * r
        traj = line_trajectory(spot, direction, 1.0, length, orientation_deg=direction)
        trace = bed.sampler.sample(traj, arr)
        res = Rim(RimConfig(max_lag=60)).process(trace)
        est = res.cumulative_distance()
        truth = traj.cumulative_distance()
        for c in checkpoints:
            idx = int(np.argmin(np.abs(truth - c)))
            errors_by_distance[c].append(abs(est[idx] - truth[idx]))

    medians = {c: 100 * float(np.median(v)) for c, v in errors_by_distance.items()}
    values = np.asarray(list(medians.values()))
    return {
        "measured": {
            "median_error_cm_by_distance": medians,
            "max_median_cm": float(values.max()),
            "growth_ratio": float(values[-1] / max(1e-9, values[0])),
        },
        "paper": {"median_range_cm": (3.0, 14.0), "note": "no significant accumulation"},
    }


def run_fig16_sampling_rate(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 16: impact of CSI sampling rate.

    Paper: accuracy improves with rate; ≥100 Hz needed at 1 m/s; 20-40 Hz
    clearly insufficient.
    """
    factors = {200: 1, 100: 2, 40: 5, 20: 10} if not quick else {200: 1, 50: 4}
    reps = 2 if quick else 4
    arr = linear_array(3)
    medians: Dict[int, float] = {}
    for rate, factor in factors.items():
        errors = []
        for r in range(reps):
            bed = make_testbed(seed=seed + r)
            spot = MEASUREMENT_SPOTS[r % len(MEASUREMENT_SPOTS)]
            traj = line_trajectory(spot, 45.0, 1.0, 4.0, orientation_deg=45.0)
            trace = bed.sampler.sample(traj, arr).downsample(factor)
            max_lag = max(20, int(60 / factor) * 2)
            res = Rim(RimConfig(max_lag=max_lag)).process(trace)
            errors.append(abs(res.total_distance - traj.total_distance))
        medians[rate] = 100 * float(np.median(errors))

    rates = sorted(medians)
    return {
        "measured": {
            "median_error_cm_by_rate": medians,
            "monotone_improvement": bool(medians[rates[0]] >= medians[rates[-1]]),
        },
        "paper": {"note": ">=100Hz needed at 1 m/s; accuracy grows with rate"},
    }


def run_fig17_virtual_antennas(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 17: impact of the virtual antenna count V.

    Paper: median error drops ~30 cm → ~10 cm as V goes 1 → 5, reaching
    6.6 cm at V = 100.
    """
    v_values = [1, 10, 50] if quick else [1, 5, 10, 50, 100]
    reps = 2 if quick else 4
    arr = linear_array(3)
    medians: Dict[int, float] = {}
    for v in v_values:
        errors = []
        for r in range(reps):
            bed = make_testbed(seed=seed + r)
            spot = MEASUREMENT_SPOTS[(r + 3) % len(MEASUREMENT_SPOTS)]
            traj = line_trajectory(spot, 120.0, 1.0, 4.0, orientation_deg=120.0)
            trace = bed.sampler.sample(traj, arr)
            res = Rim(RimConfig(max_lag=60, virtual_window=v)).process(trace)
            errors.append(abs(res.total_distance - traj.total_distance))
        medians[v] = 100 * float(np.median(errors))

    vs = sorted(medians)
    return {
        "measured": {
            "median_error_cm_by_v": medians,
            "improves_with_v": bool(medians[vs[0]] >= medians[vs[-1]]),
        },
        "paper": {"v1_median_cm": 30.0, "v100_median_cm": 6.6},
    }
