"""Tests for the sharded session fleet (repro.shard).

Locks down the PR-9 acceptance criteria:

* the consistent-hash ring is deterministic across processes and stable
  under resize (a failover remaps ~1/N sessions, not all of them);
* the pipe codec round-trips bit-exactly and refuses corruption;
* a sharded fleet produces exactly the update streams and stats a
  single in-process :class:`~repro.serve.session.SessionManager` does;
* a SIGKILLed shard's sessions resume **bit-identically** on a
  survivor from their durable checkpoints;
* worker-process metrics aggregate into the router registry without
  double counting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.config import RimConfig
from repro.core.streaming import StreamingRim
from repro.motionsim.profiles import line_trajectory
from repro.serve.session import ServeConfig, SessionManager
from repro.shard import (
    HashRing,
    ShardError,
    ShardProtocolError,
    ShardRouter,
    run_shard_sim,
)
from repro.shard import messages as msg


RIM_CFG = RimConfig(max_lag=50)
SERVE_CFG = ServeConfig(block_seconds=0.5)


@pytest.fixture(scope="module")
def shard_traces(fast_sampler, three_antenna):
    """Four short receiver traces with distinct starts and headings."""
    spots = [
        ((10.0, 8.0), 0.0),
        ((12.0, 9.0), 20.0),
        ((14.0, 10.0), -15.0),
        ((11.0, 11.0), 45.0),
    ]
    return [
        (f"rx{k:02d}", fast_sampler.sample(
            line_trajectory(spot, heading, 0.5, 1.0), three_antenna))
        for k, (spot, heading) in enumerate(spots)
    ]


def _reference_updates(trace, block_seconds=SERVE_CFG.block_seconds):
    """Uninterrupted single-stream replay: the bit-identity oracle."""
    stream = StreamingRim(
        trace.array,
        trace.sampling_rate,
        RIM_CFG,
        block_seconds=block_seconds,
        carrier_wavelength=trace.carrier_wavelength,
    )
    updates = []
    for k in range(trace.n_samples):
        update = stream.push(trace.data[k], float(trace.times[k]))
        if update is not None:
            updates.append(update)
    final = stream.flush()
    if final is not None:
        updates.append(final)
    return updates


def _same_updates(got, want):
    if len(got) != len(want):
        return False
    for a, b in zip(got, want):
        if not (
            np.array_equal(a.times, b.times)
            and np.array_equal(a.speed, b.speed)
            and np.array_equal(a.heading, b.heading, equal_nan=True)
            and a.total_distance == b.total_distance
        ):
            return False
    return True


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"session-{k}" for k in range(200)]
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order is irrelevant
        assert a.table(keys) == b.table(keys)

    def test_resize_remaps_a_bounded_fraction(self):
        keys = [f"session-{k}" for k in range(500)]
        small = HashRing(["s0", "s1"])
        grown = HashRing(["s0", "s1", "s2"])
        before, after = small.table(keys), grown.table(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        # Ideal is 1/3; allow generous slack for vnode unevenness but
        # fail hard on a full reshuffle (the failure mode the ring
        # exists to prevent).
        assert 0 < moved < len(keys) * 0.55
        # Every moved key landed on the new node, never between old ones.
        for key in keys:
            if before[key] != after[key]:
                assert after[key] == "s2"

    def test_preference_order(self):
        ring = HashRing(["s0", "s1", "s2"])
        order = list(ring.preference("some-session"))
        assert sorted(order) == ["s0", "s1", "s2"]
        assert order[0] == ring.assign("some-session")

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([], vnodes=0)
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add("s0")
        with pytest.raises(ValueError):
            ring.remove("ghost")
        ring.remove("s0")
        with pytest.raises(ValueError):
            ring.assign("anything")


class TestMessages:
    def test_json_roundtrip(self):
        payload = {"a": 1, "rates": [1.5, 2.5], "name": "rx00"}
        buf = msg.pack_message(
            msg.MSG_CREATE, "rx00", 7, msg.pack_json(payload)
        )
        out = msg.unpack_message(buf)
        assert out.msg_type == msg.MSG_CREATE
        assert out.name == "rx00"
        assert out.seq == 7
        assert out.json() == payload

    def test_data_roundtrip_bit_exact(self):
        packet = (np.arange(12, dtype=np.complex64) * (1 + 2j)).reshape(3, 4)
        buf = msg.pack_data(0.125, packet)
        timestamp, out = msg.unpack_data(buf)
        assert timestamp == 0.125
        assert out.dtype == packet.dtype
        assert np.array_equal(out, packet)

    def test_data_roundtrip_no_timestamp(self):
        packet = np.ones(5, dtype=np.float64)
        timestamp, out = msg.unpack_data(msg.pack_data(None, packet))
        assert timestamp is None
        assert np.array_equal(out, packet)

    def test_corrupted_payload_rejected(self):
        buf = bytearray(
            msg.pack_message(msg.MSG_DATA, "rx", 1, b"payload-bytes")
        )
        buf[-1] ^= 0xFF
        with pytest.raises(ShardProtocolError):
            msg.unpack_message(bytes(buf))

    def test_truncated_and_bad_magic_rejected(self):
        buf = msg.pack_message(msg.MSG_PING, "", 1, b"")
        with pytest.raises(ShardProtocolError):
            msg.unpack_message(buf[: len(buf) // 2])
        with pytest.raises(ShardProtocolError):
            msg.unpack_message(b"XXXX" + buf[4:])

    def test_fire_and_forget_classification(self):
        assert msg.is_fire_and_forget(msg.MSG_DATA)
        assert msg.is_fire_and_forget(msg.MSG_NOTE)
        assert not msg.is_fire_and_forget(msg.MSG_PING)
        assert not msg.is_fire_and_forget(msg.MSG_POLL)


class TestFleet:
    def test_sharded_matches_single_manager(self, shard_traces):
        """Same sessions, same bits, whether through 1 manager or 2 shards."""
        manager = SessionManager(rim_config=RIM_CFG, serve_config=SERVE_CFG)
        single = {}
        for name, trace in shard_traces:
            session = manager.create(
                name, trace.array, trace.sampling_rate,
                carrier_wavelength=trace.carrier_wavelength,
            )
            for k in range(trace.n_samples):
                manager.push(name, trace.data[k], float(trace.times[k]))
            single[name] = session.flush()
        single_stats = {row["session"]: row for row in manager.stats()}

        router = ShardRouter(2, rim_config=RIM_CFG, serve_config=SERVE_CFG)
        try:
            router.wait_ready()
            for name, trace in shard_traces:
                router.create(
                    name, trace.array, trace.sampling_rate,
                    carrier_wavelength=trace.carrier_wavelength,
                )
            placement = router.fleet_stats()["sessions_per_shard"]
            # Bounded-load placement: 4 sessions over 2 shards is 2/2,
            # never 4/0 (which would void the scaling gate).
            assert sorted(placement.values()) == [2, 2]
            sharded = {}
            for name, trace in shard_traces:
                for k in range(trace.n_samples):
                    router.push(name, trace.data[k], float(trace.times[k]))
                sharded[name] = router.flush(name)
            shard_stats = {row["session"]: row for row in router.stats()}
        finally:
            router.close()

        for name, _ in shard_traces:
            assert _same_updates(sharded[name], single[name]), name
            for key in ("offered", "processed", "updates",
                        "degraded_blocks", "distance_m"):
                assert shard_stats[name][key] == single_stats[name][key], (
                    name, key
                )

    def test_kill_failover_resumes_bit_identically(self, shard_traces, tmp_path):
        """A SIGKILLed shard's sessions continue on a survivor, bit-exact."""
        router = ShardRouter(
            2, rim_config=RIM_CFG, serve_config=SERVE_CFG,
            record_dir=tmp_path / "fleet",
        )
        try:
            router.wait_ready()
            for name, trace in shard_traces:
                router.create(
                    name, trace.array, trace.sampling_rate,
                    carrier_wavelength=trace.carrier_wavelength,
                )
            victim_shard = router.stats()[0]["shard"]
            delivered = {name: [] for name, _ in shard_traces}
            for name, trace in shard_traces:
                for k in range(trace.n_samples // 2):
                    router.push(name, trace.data[k], float(trace.times[k]))
                # Deliver some updates before the kill: the resumed
                # session must skip exactly these, not replay them.
                delivered[name].extend(router.poll(name))
            router.sync()
            index = int(victim_shard.rsplit("-", 1)[1])
            router.kill_shard(index, failover=True)

            fleet = router.fleet_stats()
            assert fleet["failovers"] >= 1
            assert victim_shard not in fleet["alive"]
            assert all(
                count == 0 or shard != victim_shard
                for shard, count in fleet["sessions_per_shard"].items()
            )

            for name, trace in shard_traces:
                for k in range(trace.n_samples // 2, trace.n_samples):
                    router.push(name, trace.data[k], float(trace.times[k]))
            finals = router.flush_all()
            for name, _ in shard_traces:
                delivered[name].extend(finals.get(name, []))
        finally:
            router.close()

        for name, trace in shard_traces:
            assert _same_updates(delivered[name], _reference_updates(trace)), name

    def test_metrics_aggregate_without_double_counting(self, shard_traces):
        """Worker counters fold into the router registry exactly once."""
        name, trace = shard_traces[0]
        obs.enable()
        obs.reset()
        try:
            router = ShardRouter(
                2, rim_config=RIM_CFG, serve_config=SERVE_CFG
            )
            try:
                router.wait_ready()
                router.create(
                    name, trace.array, trace.sampling_rate,
                    carrier_wavelength=trace.carrier_wavelength,
                )
                for k in range(trace.n_samples):
                    router.push(name, trace.data[k], float(trace.times[k]))
                router.flush(name)
                router.refresh_metrics()
                counter = obs.METRICS.counter(
                    f"serve.offered{{session={name}}}"
                )
                first = counter.value
                router.refresh_metrics()  # idempotent: deltas, not sums
                second = counter.value
            finally:
                router.close()
            # The worker offered every sample exactly once, and pulling
            # a second snapshot must not double-count it.
            assert first == trace.n_samples
            assert second == trace.n_samples
        finally:
            obs.disable()
            obs.reset()

    def test_router_error_surface(self, shard_traces):
        name, trace = shard_traces[0]
        router = ShardRouter(2, rim_config=RIM_CFG, serve_config=SERVE_CFG)
        try:
            router.wait_ready()
            with pytest.raises(KeyError):
                router.poll("ghost")
            router.create(
                name, trace.array, trace.sampling_rate,
                carrier_wavelength=trace.carrier_wavelength,
            )
            with pytest.raises(ValueError):
                router.create(
                    name, trace.array, trace.sampling_rate,
                    carrier_wavelength=trace.carrier_wavelength,
                )
            with pytest.raises(ShardError):
                router.create(
                    "other", trace.array, trace.sampling_rate,
                    rim_config=RimConfig(max_lag=10),
                    carrier_wavelength=trace.carrier_wavelength,
                )
            assert name in router
            assert len(router) == 1
        finally:
            router.close()
        with pytest.raises(ShardError):
            router.poll(name)

    def test_run_shard_sim_aggregate(self, shard_traces):
        result = run_shard_sim(
            shards=2,
            receivers=shard_traces[:2],
            rim_config=RIM_CFG,
            block_seconds=0.5,
        )
        agg = result["aggregate"]
        assert agg["n_sessions"] == 2
        assert agg["shards"] == 2
        assert agg["alive_shards"] == 2
        assert agg["failovers"] == 0
        assert agg["sessions_per_second"] > 0
        assert sum(agg["sessions_per_shard"].values()) == 2
        assert len(result["sessions"]) == 2
        for row in result["sessions"]:
            assert row["updates"] > 0
            assert row["shard"].startswith("shard-")
