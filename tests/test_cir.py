"""Tests for CIR-domain utilities and the Eqn.1 ≡ Eqn.2 relationship."""

import numpy as np
import pytest

from repro.channel.cir import (
    cfr_to_cir,
    cir_to_cfr,
    coherence_bandwidth,
    power_delay_profile,
    rms_delay_spread,
)
from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.ofdm import make_grid
from repro.core.trrs import trrs_cfr, trrs_cir


@pytest.fixture(scope="module")
def grid():
    return make_grid()


def _multipath_cfr(grid, delays_ns, gains):
    freqs = grid.baseband_frequencies
    return (
        np.asarray(gains)[None, :]
        * np.exp(-2j * np.pi * freqs[:, None] * np.asarray(delays_ns)[None, :] * 1e-9)
    ).sum(axis=1)


class TestConversions:
    def test_roundtrip(self, grid, rng):
        cfr = rng.standard_normal(grid.n_subcarriers) + 1j * rng.standard_normal(
            grid.n_subcarriers
        )
        back = cir_to_cfr(cfr_to_cir(cfr, grid), grid)
        np.testing.assert_allclose(back, cfr, atol=1e-10)

    def test_roundtrip_batched(self, grid, rng):
        cfr = rng.standard_normal((4, grid.n_subcarriers)) + 1j * rng.standard_normal(
            (4, grid.n_subcarriers)
        )
        back = cir_to_cfr(cfr_to_cir(cfr, grid), grid)
        np.testing.assert_allclose(back, cfr, atol=1e-10)

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError):
            cfr_to_cir(np.zeros(10, dtype=complex), grid)
        with pytest.raises(ValueError):
            cir_to_cfr(np.zeros(10, dtype=complex), grid)

    def test_single_path_peak_at_delay(self, grid):
        """A single ray's CIR peaks at its propagation delay tap."""
        delay_ns = 100.0
        cfr = _multipath_cfr(grid, [delay_ns], [1.0])
        cir = cfr_to_cir(cfr, grid)
        tap = int(np.argmax(np.abs(cir)))
        expected_tap = delay_ns * 1e-9 * grid.bandwidth
        assert tap == pytest.approx(expected_tap, abs=1.0)

    def test_two_paths_two_peaks(self, grid):
        cfr = _multipath_cfr(grid, [50.0, 400.0], [1.0, 0.8])
        cir = np.abs(cfr_to_cir(cfr, grid))
        taps = np.argsort(cir)[-2:]
        delays = sorted(taps / grid.bandwidth * 1e9)
        assert delays[0] == pytest.approx(50.0, abs=30.0)
        assert delays[1] == pytest.approx(400.0, abs=30.0)


class TestDelayStatistics:
    def test_pdp_normalized_shape(self, grid):
        cfr = _multipath_cfr(grid, [50.0, 200.0], [1.0, 0.5])
        delays, pdp = power_delay_profile(cfr, grid)
        assert delays.shape == pdp.shape
        assert delays[1] - delays[0] == pytest.approx(1.0 / grid.bandwidth)

    def test_single_path_zero_spread(self, grid):
        # A rectangular-window IFFT over the occupied tones leaks energy
        # into sidelobe taps, so "zero" spread shows up as ~100 ns floor.
        cfr = _multipath_cfr(grid, [100.0], [1.0])
        assert rms_delay_spread(cfr, grid) < 120e-9

    def test_two_path_spread(self, grid):
        """Two equal paths τ apart have RMS spread τ/2."""
        tau = 300e-9
        cfr = _multipath_cfr(grid, [50.0, 50.0 + tau * 1e9], [1.0, 1.0])
        assert rms_delay_spread(cfr, grid) == pytest.approx(tau / 2, rel=0.15)

    def test_simulated_channel_has_indoor_spread(self, fast_channel):
        """The office substrate should show realistic (>50 ns) spread."""
        from repro.channel.ofdm import make_grid as mk

        full_grid = mk()
        from repro.channel.model import MultipathChannel

        channel = MultipathChannel(
            scatterers=fast_channel.scatterers, grid=full_grid, los_gain=0.5
        )
        cfr = channel.cfr((1.0, 1.0), np.array([[10.0, 8.0]]))
        spread = rms_delay_spread(cfr[0], full_grid)
        assert 30e-9 < spread < 500e-9

    def test_coherence_bandwidth_inverse_to_spread(self, grid):
        """Longer delay spread ⇒ smaller coherence bandwidth."""
        short = _multipath_cfr(grid, [50.0, 80.0], [1.0, 1.0])
        long = _multipath_cfr(grid, [50.0, 800.0], [1.0, 1.0])
        assert coherence_bandwidth(long, grid) < coherence_bandwidth(short, grid)


class TestEqn1MatchesEqn2:
    def test_trrs_cir_upper_bounds_cfr_form(self, grid, rng):
        """Eqn. 1 maxes over taps, so κ_CIR ≥ κ_CFR always; they coincide
        when the channels are time-aligned."""
        cfr1 = _multipath_cfr(grid, [50.0, 200.0], [1.0, 0.6])
        cfr2 = _multipath_cfr(grid, [50.0, 200.0], [0.9, 0.7])
        cir1 = cfr_to_cir(cfr1, grid)
        cir2 = cfr_to_cir(cfr2, grid)
        k_cir = trrs_cir(cir1, cir2)
        k_cfr = trrs_cfr(cfr1, cfr2)
        assert k_cir >= k_cfr - 1e-9

    def test_aligned_channels_agree(self, grid):
        cfr1 = _multipath_cfr(grid, [50.0, 220.0], [1.0, 0.5])
        cfr2 = _multipath_cfr(grid, [50.0, 220.0], [1.0, 0.5])
        k_cir = trrs_cir(cfr_to_cir(cfr1, grid), cfr_to_cir(cfr2, grid))
        k_cfr = trrs_cfr(cfr1, cfr2)
        assert k_cir == pytest.approx(1.0, abs=1e-9)
        assert k_cfr == pytest.approx(1.0, abs=1e-9)

    def test_cir_form_ignores_timing_offset(self, grid):
        """The max over convolution taps absorbs an STO-style delay that
        would destroy the raw CFR inner product — the tap-domain view of
        why sanitization exists."""
        cfr1 = _multipath_cfr(grid, [50.0, 200.0], [1.0, 0.6])
        cfr2 = _multipath_cfr(grid, [150.0, 300.0], [1.0, 0.6])  # +100 ns STO
        k_cir = trrs_cir(cfr_to_cir(cfr1, grid), cfr_to_cir(cfr2, grid))
        k_cfr = trrs_cfr(cfr1, cfr2)
        assert k_cir > 0.9
        assert k_cfr < 0.5
