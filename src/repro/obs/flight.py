"""Flight recorder: a bounded ring of recent pipeline events.

Long soak runs fail long after the interesting part happened.  The
flight recorder keeps the last ``capacity`` noteworthy events — protocol
errors, connection lifecycle, guard escalations, backpressure sheds,
store repairs, shutdown signals — in a thread-safe ring buffer, and
dumps them (plus a metrics snapshot) to a JSON artifact when something
goes wrong, turning "the soak job failed" into an inspectable timeline.

Recording is **always on**: each event is a tiny dict append under a
lock, cheap enough to leave running even with tracing disabled, and the
whole point is having the timeline when an *unexpected* failure hits.
Dumps only happen on explicit triggers (protocol error, first guard
escalation of a session, graceful shutdown) and only write to disk when
a dump directory is configured, so tests and libraries never leave
artifacts behind accidentally.

The process-wide instance lives at ``repro.obs.FLIGHT``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

FLIGHT_SCHEMA = "rim-flight/v1"

# Event kinds are free-form, but these are the ones the pipeline emits.
KNOWN_KINDS = (
    "protocol_error",
    "connection",
    "reconnect",
    "guard_escalation",
    "backpressure",
    "session",
    "store_repair",
    "shutdown",
    "note",
)


class FlightRecorder:
    """Bounded, thread-safe ring buffer of recent pipeline events.

    Args:
        capacity: Maximum retained events; older ones are evicted.
        max_dumps: Safety valve — ``auto_dump`` stops writing files after
            this many dumps so a flapping fault cannot fill a disk.
    """

    def __init__(self, capacity: int = 2048, max_dumps: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.max_dumps = int(max_dumps)
        self.dump_dir: Optional[Path] = None
        self.n_recorded = 0
        self.n_dumped = 0
        self._events: deque = deque(maxlen=self.capacity)
        self._mu = threading.Lock()

    def configure(self, dump_dir: Union[str, Path, None]) -> None:
        """Set (or clear) the directory ``auto_dump`` writes into."""
        self.dump_dir = None if dump_dir is None else Path(dump_dir)

    def record(
        self,
        kind: str,
        source: str,
        session: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one event; never raises, never blocks beyond the lock."""
        event = {
            "kind": str(kind),
            "source": str(source),
            "session": session,
            "wall_time": time.time(),
            "mono_s": time.perf_counter(),
            "detail": detail,
        }
        with self._mu:
            event["seq"] = self.n_recorded
            self.n_recorded += 1
            self._events.append(event)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._mu:
            return [dict(e) for e in self._events]

    def clear(self) -> None:
        with self._mu:
            self._events.clear()
            self.n_recorded = 0
            self.n_dumped = 0

    def __len__(self) -> int:
        with self._mu:
            return len(self._events)

    # -- dumping ----------------------------------------------------------

    def payload(self, reason: str) -> Dict[str, Any]:
        """The dump artifact as a plain dict (see :data:`FLIGHT_SCHEMA`)."""
        from repro import obs

        return {
            "schema": FLIGHT_SCHEMA,
            "reason": str(reason),
            "dumped_at": time.time(),
            "mono_s": time.perf_counter(),
            "n_recorded": self.n_recorded,
            "events": self.snapshot(),
            "metrics": obs.METRICS.snapshot(),
        }

    def dump(self, reason: str, path: Union[str, Path]) -> Dict[str, Any]:
        """Write the payload to ``path`` and return it."""
        payload = self.payload(reason)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return payload

    def auto_dump(self, reason: str) -> Optional[Path]:
        """Dump into ``dump_dir`` if configured; swallow I/O failures.

        Returns the written path, or ``None`` when no directory is
        configured, the dump budget is exhausted, or the write failed.
        """
        with self._mu:
            if self.dump_dir is None or self.n_dumped >= self.max_dumps:
                return None
            n = self.n_dumped
            self.n_dumped += 1
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
        path = self.dump_dir / f"flight-{n:03d}-{safe}.json"
        try:
            self.dump(reason, path)
        except OSError:
            return None
        return path


def validate_flight_dump(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed dump."""
    if not isinstance(payload, dict):
        raise ValueError(f"flight dump must be a dict, got {type(payload)}")
    if payload.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {FLIGHT_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for key in ("reason", "dumped_at", "events", "metrics", "n_recorded"):
        if key not in payload:
            raise ValueError(f"flight dump missing key {key!r}")
    events = payload["events"]
    if not isinstance(events, list):
        raise ValueError("flight dump 'events' must be a list")
    last_seq = -1
    for i, event in enumerate(events):
        for key in ("seq", "kind", "source", "wall_time", "mono_s", "detail"):
            if key not in event:
                raise ValueError(f"event {i} missing key {key!r}")
        if not isinstance(event["detail"], dict):
            raise ValueError(f"event {i} detail must be a dict")
        if event["seq"] <= last_seq:
            raise ValueError(
                f"event seqs must be strictly increasing, "
                f"got {event['seq']} after {last_seq}"
            )
        last_seq = event["seq"]


# The process-wide recorder everything reports into (re-exported as
# ``repro.obs.FLIGHT``).
FLIGHT = FlightRecorder()
