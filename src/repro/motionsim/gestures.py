"""Gesture motion generation (§6.3.2, Fig. 19).

The paper's gesture set: move the pointer towards left / right / up / down
and back, sensed by an L-shaped 3-antenna array.  Each gesture produces a
distinctive alignment pattern — a speed burst in one direction immediately
followed by the opposite direction on one specific antenna pair.

Human gestures vary in amplitude, speed, and straightness, so the generator
randomizes those within realistic bounds per (user, hand) profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.constants import DEFAULT_SAMPLING_RATE
from repro.motionsim.profiles import back_and_forth_trajectory, still_trajectory
from repro.motionsim.trajectory import Trajectory

GESTURES = ("left", "right", "up", "down")

_DIRECTIONS_DEG = {
    "right": 0.0,
    "up": 90.0,
    "left": 180.0,
    "down": -90.0,
}


@dataclass
class GestureProfile:
    """Per-user/hand variability of gesture execution.

    Attributes:
        amplitude: Mean out-and-back reach, meters.
        amplitude_jitter: Relative std-dev of the reach.
        speed: Mean hand speed, m/s.
        speed_jitter: Relative std-dev of the speed.
        direction_jitter_deg: Std-dev of the aiming error, degrees.
        lead_in: Still time before the gesture, seconds.
        lead_out: Still time after the gesture, seconds.
    """

    amplitude: float = 0.35
    amplitude_jitter: float = 0.15
    speed: float = 0.6
    speed_jitter: float = 0.2
    direction_jitter_deg: float = 5.0
    lead_in: float = 0.3
    lead_out: float = 0.3


def gesture_trajectory(
    gesture: str,
    start=(0.0, 0.0),
    profile: Optional[GestureProfile] = None,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    rng: Optional[np.random.Generator] = None,
) -> Trajectory:
    """A single out-and-back gesture with human-like variability.

    Args:
        gesture: One of :data:`GESTURES`.
        start: Hand rest position.
        profile: Execution variability; defaults are moderate.
        sampling_rate: CSI packet rate.
        rng: Randomness source.

    Returns:
        still(lead_in) → out → back → still(lead_out) as one trajectory.
    """
    if gesture not in _DIRECTIONS_DEG:
        raise ValueError(f"unknown gesture {gesture!r}; have {sorted(_DIRECTIONS_DEG)}")
    profile = profile or GestureProfile()
    rng = rng or np.random.default_rng()

    amplitude = profile.amplitude * max(
        0.3, 1.0 + rng.normal(0.0, profile.amplitude_jitter)
    )
    speed = profile.speed * max(0.3, 1.0 + rng.normal(0.0, profile.speed_jitter))
    direction = _DIRECTIONS_DEG[gesture] + rng.normal(0.0, profile.direction_jitter_deg)

    move = back_and_forth_trajectory(
        start, direction, amplitude, speed, sampling_rate=sampling_rate
    )
    lead_in = still_trajectory(start, profile.lead_in, sampling_rate)
    lead_out = still_trajectory(start, profile.lead_out, sampling_rate)
    return lead_in.concatenate(move).concatenate(lead_out)


def gesture_direction_deg(gesture: str) -> float:
    """Canonical world direction of a gesture's outward stroke."""
    if gesture not in _DIRECTIONS_DEG:
        raise ValueError(f"unknown gesture {gesture!r}")
    return _DIRECTIONS_DEG[gesture]
