"""Unit tests for DP peak tracking (Eqns. 6-8) and sub-sample refinement."""

import numpy as np
import pytest

from repro.core.alignment import AlignmentMatrix
from repro.core.tracking import greedy_argmax_path, refine_lags, track_peaks
from repro.perf import dptrack
from repro.perf.dptrack import dp_track_batch, native_available


def _matrix(values, fs=100.0):
    values = np.asarray(values, dtype=np.float64)
    w = (values.shape[1] - 1) // 2
    return AlignmentMatrix(
        values=values, lags=np.arange(-w, w + 1), sampling_rate=fs, pair=(0, 1)
    )


def _peaky(t, n_lags, path, peak=1.0, floor=0.1, rng=None):
    """Synthesize a matrix with a known peak path plus optional noise."""
    values = np.full((t, n_lags), floor)
    if rng is not None:
        values += rng.uniform(0, 0.1, (t, n_lags))
    for k, idx in enumerate(path):
        values[k, idx] = peak
    return values


class TestTrackPeaks:
    def test_recovers_constant_path(self):
        path = [7] * 20
        m = _matrix(_peaky(20, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lag_indices, path)

    def test_recovers_drifting_path(self):
        path = [2 + k // 4 for k in range(20)]
        m = _matrix(_peaky(20, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lag_indices, path)

    def test_rejects_single_outlier(self, rng):
        """A one-sample glitch peak should not yank the path (the point of
        the jump cost ω, §4.2)."""
        path = [5] * 30
        values = _peaky(30, 11, path, rng=rng)
        values[15, 5] = 0.2  # true peak weak at t=15...
        values[15, 0] = 1.0  # ...glitch at a distant lag
        out = track_peaks(_matrix(values), transition_weight=-2.0)
        assert out.lag_indices[15] == 5

    def test_greedy_takes_the_outlier(self, rng):
        path = [5] * 30
        values = _peaky(30, 11, path, rng=rng)
        values[15, 5] = 0.2
        values[15, 0] = 1.0
        out = greedy_argmax_path(_matrix(values))
        assert out.lag_indices[15] == 0

    def test_lags_are_shifted_indices(self):
        path = [8] * 5
        m = _matrix(_peaky(5, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lags, np.array(path) - 5)

    def test_sign_flip_tracked(self):
        up = [8] * 15
        down = [2] * 15
        values = np.vstack([_peaky(15, 11, up), _peaky(15, 11, down)])
        out = track_peaks(_matrix(values))
        assert (out.lags[:10] > 0).all()
        assert (out.lags[-10:] < 0).all()

    def test_nan_treated_as_zero_evidence(self):
        path = [5] * 20
        values = _peaky(20, 11, path)
        values[8] = np.nan
        out = track_peaks(_matrix(values))
        # Path continues straight through the hole.
        assert out.lag_indices[8] == 5
        assert np.isnan(out.path_trrs[8])

    def test_requires_negative_weight(self):
        m = _matrix(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            track_peaks(m, transition_weight=0.5)

    def test_empty_matrix(self):
        m = _matrix(np.zeros((0, 5)))
        out = track_peaks(m)
        assert out.lags.size == 0

    def test_score_is_sum_along_path(self):
        path = [3] * 4
        m = _matrix(_peaky(4, 7, path, peak=1.0, floor=0.0))
        out = track_peaks(m, transition_weight=-1.0)
        # 4 e-terms at t plus 3 e-terms at t-1 per transition = e totals:
        # score = e[0] + sum over steps (e[t-1] + e[t]) = 1 + 3*(1+1) = 7.
        assert out.score == pytest.approx(7.0)

    def test_single_time_step(self):
        """t == 1: no transitions, the path is the row argmax."""
        m = _matrix(np.array([[0.1, 0.2, 0.9, 0.3, 0.1]]))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lag_indices, [2])
        assert out.score == pytest.approx(0.9)

    def test_single_lag_column(self):
        """n_lags == 1: the only path is column 0 at every step."""
        values = np.array([[0.4], [0.5], [0.6]])
        out = track_peaks(_matrix(values))
        np.testing.assert_array_equal(out.lag_indices, [0, 0, 0])
        np.testing.assert_array_equal(out.lags, [0, 0, 0])
        assert out.score == pytest.approx(0.4 + (0.4 + 0.5) + (0.5 + 0.6))

    def test_all_nan_lag_column_never_tracked(self):
        """A lag whose column is all NaN carries zero evidence and loses
        to any positive-evidence column."""
        path = [5] * 12
        values = _peaky(12, 11, path)
        values[:, 8] = np.nan
        out = track_peaks(_matrix(values))
        assert not (out.lag_indices == 8).any()
        np.testing.assert_array_equal(out.lag_indices, path)

    def test_tie_matrix_first_index_wins(self):
        """A constant matrix ties everywhere; np.argmax semantics pick the
        first (lowest-index) column and the zero-jump transition."""
        out = track_peaks(_matrix(np.full((6, 9), 0.5)))
        np.testing.assert_array_equal(out.lag_indices, np.zeros(6, dtype=int))


class TestRefineLags:
    def test_symmetric_peak_unchanged(self):
        values = np.array([[0.2, 1.0, 0.2]])
        out = refine_lags(values, np.array([1]))
        assert out[0] == pytest.approx(1.0)

    def test_asymmetric_peak_shifts_towards_heavier_side(self):
        values = np.array([[0.2, 1.0, 0.6]])
        out = refine_lags(values, np.array([1]))
        assert 1.0 < out[0] < 1.5

    def test_exact_parabola_vertex(self):
        # y = 1 - (x - 0.3)^2 sampled at x = -1, 0, 1 around index 1.
        xs = np.array([-1.0, 0.0, 1.0])
        ys = 1 - (xs - 0.3) ** 2
        out = refine_lags(ys[None, :], np.array([1]))
        assert out[0] == pytest.approx(1.3, abs=1e-9)

    def test_border_peak_not_refined(self):
        values = np.array([[1.0, 0.5, 0.2]])
        out = refine_lags(values, np.array([0]))
        assert out[0] == 0.0

    def test_nan_neighbor_not_refined(self):
        values = np.array([[np.nan, 1.0, 0.5]])
        out = refine_lags(values, np.array([1]))
        assert out[0] == 1.0

    def test_shift_clamped_to_half(self):
        values = np.array([[0.999, 1.0, 0.9999]])
        out = refine_lags(values, np.array([1]))
        assert abs(out[0] - 1.0) <= 0.5


# -- batched DP kernel vs the reference recursion ----------------------------


def _oracle(stack, transition_weight=-2.0):
    """Per-matrix reference answers for an evidence stack (NaNs allowed)."""
    idx, scores = [], []
    for values in stack:
        out = track_peaks(
            _matrix(values), transition_weight=transition_weight, refine=False
        )
        idx.append(out.lag_indices)
        scores.append(out.score)
    return np.asarray(idx), np.asarray(scores)


def _zeroed(stack):
    """NaN -> 0, exactly as track_peaks prepares its evidence."""
    e = np.array(stack, dtype=np.float64)
    np.copyto(e, 0.0, where=np.isnan(e))
    return e


@pytest.fixture(params=["native", "numpy"])
def dp_impl(request, monkeypatch):
    """Run dp_track_batch once with the compiled kernel, once without."""
    if request.param == "native":
        if not native_available():
            pytest.skip("no C compiler available for the native DP kernel")
    else:
        monkeypatch.setattr(dptrack, "_load_native", lambda: None)
    return request.param


class TestBatchedDPMatchesReference:
    """dp_track_batch must be bit-identical to the reference recursion:
    same candidate sums, same first-index tie-breaks, same scores."""

    def _check(self, stack, transition_weight=-2.0):
        want_idx, want_scores = _oracle(stack, transition_weight)
        got_idx, got_scores = dp_track_batch(_zeroed(stack), transition_weight)
        np.testing.assert_array_equal(got_idx, want_idx)
        # Bit-identical, not merely close: the backends share op order.
        np.testing.assert_array_equal(got_scores, want_scores)

    def test_clean_stack(self, dp_impl, rng):
        stack = [
            _peaky(18, 11, [2 + k // 4 for k in range(18)], rng=rng),
            _peaky(18, 11, [9 - k // 3 for k in range(18)], rng=rng),
            _peaky(18, 11, [5] * 18, rng=rng),
        ]
        self._check(stack)

    def test_faulted_stack_with_nan_holes(self, dp_impl, rng):
        stack = np.stack(
            [_peaky(20, 13, [6] * 20, rng=rng) for _ in range(4)]
        )
        stack[0, 4:7] = np.nan  # burst loss: whole rows gone
        stack[1, :, 3] = np.nan  # one lag column dead throughout
        stack[2, 10] = np.nan
        stack[3, :] = np.nan  # every cell lost
        self._check(stack)

    def test_quantized_tie_stack(self, dp_impl, rng):
        """Coarsely quantized evidence forces many exact score ties; the
        batch kernel must break every one the way np.argmax does."""
        stack = rng.integers(0, 4, size=(5, 16, 9)) / 4.0
        self._check(stack)
        self._check(stack, transition_weight=-0.5)

    def test_single_time_step(self, dp_impl, rng):
        self._check(rng.uniform(0, 1, size=(3, 1, 11)))

    def test_single_lag_column(self, dp_impl, rng):
        self._check(rng.uniform(0, 1, size=(3, 6, 1)))

    def test_wide_matrix_beyond_native_stack_cap(self, dp_impl, rng):
        """L > DP_MAX_LAGS exceeds the C kernel's stack scratch; the
        batch entry point must fall back to the exact numpy path."""
        stack = rng.uniform(0, 1, size=(2, 4, 601))
        self._check(stack)

    def test_float32_mode_matches_float64_on_exact_evidence(self, dp_impl, rng):
        """With evidence and jump costs exactly representable in float32
        (and partial sums well inside 24 bits), the float32 kernel twin
        must produce identical paths and scores — isolating precision
        from logic."""
        stack = rng.integers(0, 65, size=(4, 20, 9)) / 64.0
        e64 = _zeroed(stack)
        idx64, sc64 = dp_track_batch(e64, -2.0)
        idx32, sc32 = dp_track_batch(e64.astype(np.float32), -2.0)
        np.testing.assert_array_equal(idx32, idx64)
        np.testing.assert_array_equal(sc32, sc64)


class TestSubSampleAccuracy:
    def test_refinement_beats_integer_quantization(self, rng):
        """Peaks landing between integer lags are recovered to sub-sample
        accuracy — the mechanism behind super-resolution speed (§3.2)."""
        true_lag = 5.37
        lags = np.arange(-10, 11)
        errors_int, errors_ref = [], []
        for _ in range(20):
            row = np.exp(-((lags - true_lag) ** 2) / 4.0) + rng.normal(0, 0.01, lags.size)
            m = _matrix(np.tile(row, (5, 1)))
            out = track_peaks(m)
            errors_int.append(abs(out.lags[2] - true_lag))
            errors_ref.append(abs(out.refined_lags[2] - true_lag))
        assert np.mean(errors_ref) < np.mean(errors_int)
        assert np.mean(errors_ref) < 0.15
