"""Observability layer: tracer semantics, metrics round-trip, pipeline stats.

Covers the PR-2 acceptance criteria:

* spans nest correctly and aggregate sensibly;
* a disabled tracer is a true no-op (no attributes, shared null context);
* the metrics registry round-trips losslessly through JSONL;
* ``RimResult.stats`` / ``MotionUpdate.stats`` are attached on both the
  batch and streaming paths, including the per-block latency histogram;
* instrumentation never perturbs numerics — a traced run is bit-for-bit
  identical to an untraced run (tier-1 guard for every future obs change).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rim, RimConfig, StreamingRim, obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer, aggregate_spans, render_span_table


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with instrumentation off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- tracer ---------------------------------------------------------------


def test_spans_nest_correctly():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", shape=(4, 2)) as outer:
        with tracer.span("inner_a") as inner_a:
            assert tracer.current is inner_a
        with tracer.span("inner_b"):
            with tracer.span("leaf"):
                pass
    assert tracer.current is None
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root is outer
    assert [c.name for c in root.children] == ["inner_a", "inner_b"]
    assert [c.name for c in root.children[1].children] == ["leaf"]
    # Wall time flows down the tree: the parent covers its children.
    assert root.duration >= sum(c.duration for c in root.children)
    assert root.self_seconds >= 0.0
    assert root.meta == {"shape": (4, 2)}


def test_span_aggregation_groups_by_name():
    tracer = Tracer(enabled=True)
    with tracer.span("root") as root:
        for k in range(3):
            with tracer.span("stage", k=k):
                pass
    agg = {a["name"]: a for a in aggregate_spans(root)}
    assert agg["stage"]["calls"] == 3
    assert agg["root"]["calls"] == 1
    assert agg["stage"]["total_s"] <= agg["root"]["total_s"]
    table = render_span_table(aggregate_spans(root))
    assert "stage" in table and "calls" in table


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    ctx = tracer.span("anything", big=list(range(10)))
    assert ctx is NULL_SPAN  # shared singleton: no per-call allocation
    with ctx as span:
        assert span is None
    assert tracer.roots == []
    assert tracer.current is None


def test_disabled_obs_records_nothing():
    obs.add("some.counter", 5)
    obs.observe("some.hist", 0.5)
    obs.set_gauge("some.gauge", 1.0)
    assert len(obs.METRICS) == 0
    with obs.span("nothing") as span:
        assert span is None
    assert obs.TRACER.roots == []


# -- metrics --------------------------------------------------------------


def test_metrics_jsonl_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("work.items", help="items processed").add(42)
    reg.gauge("queue.depth").set(7.5)
    hist = reg.histogram("latency_s", bounds=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(v)

    path = tmp_path / "metrics.jsonl"
    reg.export_jsonl(path)
    restored = MetricsRegistry.from_jsonl(path)
    assert restored.snapshot() == reg.snapshot()
    # And the restored registry keeps working.
    restored.counter("work.items").add(1)
    assert restored.counter("work.items").value == 43


def test_histogram_stats_and_percentiles():
    reg = MetricsRegistry()
    hist = reg.histogram("h", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 10.0):
        hist.observe(v)
    assert hist.count == 5
    assert hist.vmin == 0.5 and hist.vmax == 10.0
    assert hist.counts == [1, 2, 1, 1]
    assert hist.percentile(0.5) == 2.0  # bucket upper bound
    assert hist.percentile(1.0) == 10.0
    hist.observe(float("nan"))
    assert hist.count == 5  # NaN observations are ignored
    assert "n=5" in hist.summary()


def test_metric_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_apply_snapshot_counter_deltas_never_double_count():
    """Repeated applications of a growing source advance by deltas only."""
    src = MetricsRegistry()
    dst = MetricsRegistry()
    src.counter("work.items").add(10)
    prev = dst.apply_snapshot(src.snapshot())
    assert dst.counter("work.items").value == 10
    src.counter("work.items").add(5)
    prev = dst.apply_snapshot(src.snapshot(), previous=prev)
    assert dst.counter("work.items").value == 15
    # Applying the identical snapshot again is a no-op.
    dst.apply_snapshot(src.snapshot(), previous=prev)
    assert dst.counter("work.items").value == 15


def test_apply_snapshot_counter_restart_counts_whole():
    """A source whose counter regressed is treated as a fresh process."""
    src = MetricsRegistry()
    dst = MetricsRegistry()
    src.counter("pushes").add(100)
    prev = dst.apply_snapshot(src.snapshot())
    restarted = MetricsRegistry()
    restarted.counter("pushes").add(3)
    dst.apply_snapshot(restarted.snapshot(), previous=prev)
    assert dst.counter("pushes").value == 103


def test_apply_snapshot_gauge_last_wins():
    src = MetricsRegistry()
    dst = MetricsRegistry()
    dst.gauge("queue.depth").set(99.0)
    src.gauge("queue.depth").set(7.0)
    dst.apply_snapshot(src.snapshot())
    assert dst.gauge("queue.depth").value == 7.0


def test_apply_snapshot_histogram_merges_by_bucket_delta():
    src = MetricsRegistry()
    dst = MetricsRegistry()
    hist = src.histogram("lat", bounds=(1.0, 2.0))
    for v in (0.5, 1.5):
        hist.observe(v)
    prev = dst.apply_snapshot(src.snapshot())
    merged = dst.histogram("lat", bounds=(1.0, 2.0))
    assert merged.count == 2 and merged.counts == [1, 1, 0]
    hist.observe(10.0)
    dst.apply_snapshot(src.snapshot(), previous=prev)
    assert merged.count == 3
    assert merged.counts == [1, 1, 1]
    assert merged.vmin == 0.5 and merged.vmax == 10.0


def test_apply_snapshot_histogram_bounds_mismatch_is_ignored():
    """Never corrupt local buckets with an incompatible remote layout."""
    src = MetricsRegistry()
    dst = MetricsRegistry()
    dst.histogram("lat", bounds=(1.0, 2.0)).observe(0.5)
    src.histogram("lat", bounds=(10.0, 20.0)).observe(15.0)
    dst.apply_snapshot(src.snapshot())
    local = dst.histogram("lat", bounds=(1.0, 2.0))
    assert local.count == 1
    assert local.counts == [1, 0, 0]


def test_apply_snapshot_merges_two_sources():
    """Two workers' counters sum; per-source previous keeps them apart."""
    a, b, dst = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    a.counter("n").add(4)
    b.counter("n").add(6)
    prev_a = dst.apply_snapshot(a.snapshot())
    prev_b = dst.apply_snapshot(b.snapshot())
    assert dst.counter("n").value == 10
    a.counter("n").add(1)
    dst.apply_snapshot(a.snapshot(), previous=prev_a)
    dst.apply_snapshot(b.snapshot(), previous=prev_b)
    assert dst.counter("n").value == 11


def test_registry_concurrent_updates_never_torn():
    """Snapshots under concurrent writers are internally consistent.

    Writer threads hammer a counter and a histogram while a reader loops
    ``snapshot()`` / ``to_jsonl()``.  Every observed snapshot must be
    self-consistent (bucket counts summing to the histogram count, count
    never ahead of the true total), and the final values must be exact —
    no lost increments, no torn multi-field reads.
    """
    import json as _json
    import threading

    reg = MetricsRegistry()
    counter = reg.counter("stress.count")
    hist = reg.histogram("stress.lat", bounds=(0.1, 0.2, 0.5))
    n_writers, n_iters = 4, 2000
    start = threading.Barrier(n_writers + 2)
    stop = threading.Event()
    torn = []

    def writer(seed: int) -> None:
        start.wait()
        values = (0.05, 0.15, 0.3, 0.7)
        for k in range(n_iters):
            counter.add(1)
            hist.observe(values[(k + seed) % len(values)])

    def reader() -> None:
        start.wait()
        while not stop.is_set():
            snap = reg.snapshot()
            h = snap["stress.lat"]
            if sum(h["counts"]) != h["count"]:
                torn.append(("bucket-sum", h))
            if snap["stress.count"]["value"] > n_writers * n_iters:
                torn.append(("overcount", snap["stress.count"]))
            for line in reg.to_jsonl().splitlines():
                _json.loads(line)

    threads = [
        threading.Thread(target=writer, args=(k,)) for k in range(n_writers)
    ] + [threading.Thread(target=reader), threading.Thread(target=reader)]
    for t in threads:
        t.start()
    for t in threads[:n_writers]:
        t.join()
    stop.set()
    for t in threads[n_writers:]:
        t.join()

    assert not torn, torn[:3]
    assert counter.value == n_writers * n_iters
    assert hist.count == n_writers * n_iters
    assert sum(hist.counts) == hist.count


def test_registry_collectors_run_at_snapshot_time():
    reg = MetricsRegistry()
    gauge = reg.gauge("live.depth")
    calls = []

    def collect():
        calls.append(1)
        gauge.set(float(len(calls)))

    reg.add_collector(collect)
    assert reg.snapshot()["live.depth"]["value"] == 1.0
    assert reg.snapshot()["live.depth"]["value"] == 2.0

    # Returning False deregisters (the weakref-owner convention); so does
    # raising.
    reg.add_collector(lambda: False)
    reg.snapshot()
    reg.snapshot()

    def broken():
        raise RuntimeError("collector died")

    reg.add_collector(broken)
    reg.snapshot()  # dropped, not propagated
    before = len(calls)
    reg.snapshot()
    assert len(calls) == before + 1  # the healthy collector survives


# -- pipeline stats -------------------------------------------------------

BATCH_STAGES = (
    "rim.process",
    "rim.sanitize",
    "rim.movement_detect",
    "rim.pre_screen",
    "alignment_matrix",
    "dp_tracking",
    "rim.integrate",
)


def test_rim_result_stats_batch(line_trace):
    cfg = RimConfig(max_lag=40)
    obs.enable()
    result = Rim(cfg).process(line_trace)
    assert result.stats is not None
    names = {s["name"] for s in result.stats["spans"]}
    for stage in BATCH_STAGES:
        assert stage in names, f"missing stage span {stage}"
    assert result.stats["wall_s"] > 0.0
    assert obs.METRICS.counter("rim.samples_processed").value == line_trace.n_samples
    assert obs.METRICS.counter("alignment.matrices").value > 0
    assert obs.METRICS.counter("dp.paths_tracked").value > 0
    prominence = obs.METRICS.get("trrs.peak_prominence")
    assert prominence is not None and prominence.count > 0


def test_rim_result_stats_absent_when_disabled(line_trace):
    result = Rim(RimConfig(max_lag=40)).process(line_trace)
    assert result.stats is None
    assert len(obs.METRICS) == 0


def test_streaming_stats_and_latency_histogram(line_trace):
    cfg = RimConfig(max_lag=40)
    obs.enable()
    stream = StreamingRim(
        line_trace.array,
        line_trace.sampling_rate,
        cfg,
        block_seconds=0.5,
        carrier_wavelength=line_trace.carrier_wavelength,
    )
    updates = []
    for k in range(line_trace.n_samples):
        up = stream.push(line_trace.data[k], float(line_trace.times[k]))
        if up is not None:
            updates.append(up)
    up = stream.flush()
    if up is not None:
        updates.append(up)

    assert len(updates) >= 2
    for update in updates:
        assert update.stats is not None
        assert update.stats["block_latency_s"] > 0.0
        assert any(s["name"] == "stream.block" for s in update.stats["spans"])
        # The batch pipeline's stage spans nest inside the block span.
        assert any(s["name"] == "rim.process" for s in update.stats["spans"])

    latency = obs.METRICS.get("stream.block_latency_s")
    assert latency is not None
    assert latency.count == len(updates)
    assert obs.METRICS.counter("stream.blocks").value == len(updates)
    assert (
        obs.METRICS.counter("stream.samples_emitted").value == line_trace.n_samples
    )


def test_streaming_stats_absent_when_disabled(line_trace):
    stream = StreamingRim(
        line_trace.array,
        line_trace.sampling_rate,
        RimConfig(max_lag=40),
        block_seconds=0.5,
        carrier_wavelength=line_trace.carrier_wavelength,
    )
    seen = 0
    for k in range(line_trace.n_samples):
        up = stream.push(line_trace.data[k], float(line_trace.times[k]))
        if up is not None:
            assert up.stats is None
            seen += 1
    assert seen >= 1
    assert len(obs.METRICS) == 0


# -- numeric invariance (tier-1 guard) ------------------------------------


def test_tracing_never_perturbs_numerics(line_trace):
    """Enabled instrumentation must match a disabled run bit-for-bit."""
    cfg = RimConfig(max_lag=40)
    baseline = Rim(cfg).process(line_trace)

    obs.enable()
    traced = Rim(cfg).process(line_trace)
    obs.disable()

    for attr in ("speed", "heading", "moving", "group_choice", "times"):
        a = getattr(baseline.motion, attr)
        b = getattr(traced.motion, attr)
        assert a.tobytes() == b.tobytes(), f"motion.{attr} diverged under tracing"
    assert (
        baseline.movement.indicator.tobytes() == traced.movement.indicator.tobytes()
    )
    assert baseline.total_distance == traced.total_distance
    assert len(baseline.group_tracks) == len(traced.group_tracks)
    for t0, t1 in zip(baseline.group_tracks, traced.group_tracks):
        assert t0.path.refined_lags.tobytes() == t1.path.refined_lags.tobytes()
        assert t0.matrix.values.tobytes() == t1.matrix.values.tobytes()


# -- perf baseline schema -------------------------------------------------


def test_perf_baseline_payload_schema(tmp_path):
    from repro.eval.perf import (
        run_perf_baseline,
        validate_perf_payload,
        write_perf_baseline,
    )

    payload = run_perf_baseline(seed=0, quick=True, duration_s=1.0)
    validate_perf_payload(payload)  # structural acceptance criterion
    assert obs.enabled() is False  # harness restores instrumentation state

    out = tmp_path / "BENCH_perf.json"
    write_perf_baseline(out, payload)
    import json

    reread = json.loads(out.read_text())
    validate_perf_payload(reread)
    assert reread["streaming"]["block_latency"]["count"] >= 1

    with pytest.raises(ValueError):
        validate_perf_payload({"schema": "bogus"})
    broken = json.loads(out.read_text())
    broken["batch"]["spans"] = []
    with pytest.raises(ValueError):
        validate_perf_payload(broken)
