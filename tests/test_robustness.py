"""Fault-matrix tests: the pipeline must degrade, never fall over.

Every fault class of :class:`repro.robustness.FaultPlan` is run through the
batch and streaming estimators under ``policy="repair"`` asserting
no-crash, plus targeted checks of the guard policies, the degradation
policy, and the ISSUE acceptance scenario (bursty loss + dead chain with
bounded error and a health report flagging both).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultPlan, GuardError, Rim, RimConfig, linear_array
from repro.channel.impairments import ImpairmentConfig
from repro.channel.model import MultipathChannel
from repro.channel.ofdm import make_grid
from repro.channel.sampler import CsiSampler, ap_antenna_positions
from repro.channel.scatterers import uniform_field
from repro.core.streaming import StreamingRim
from repro.motionsim.profiles import line_trajectory
from repro.robustness.guard import StreamGuard, guard_trace
from repro.robustness.health import HealthReport, apply_degradation

CFG = RimConfig(max_lag=50)

FAULT_MATRIX = {
    "dead_chain": FaultPlan(seed=11, dead_chains=(2,)),
    "flaky_chain": FaultPlan(seed=12, flaky_chain=1, flaky_rate=0.3, flaky_burst=8),
    "loss_bursts": FaultPlan(seed=13, loss_rate=0.15, loss_burst=12),
    "reordering": FaultPlan(seed=14, reorder_fraction=0.05),
    "duplication": FaultPlan(seed=15, duplicate_fraction=0.05),
    "timestamp_jitter": FaultPlan(seed=16, timestamp_jitter_std=5e-4),
    "clock_drift": FaultPlan(seed=17, clock_drift=500e-6),
    "agc_steps": FaultPlan(seed=18, gain_step_db=6.0, n_gain_steps=3),
    "truncation": FaultPlan(seed=19, truncate_fraction=0.08),
    "everything": FaultPlan(
        seed=20,
        dead_chains=(2,),
        loss_rate=0.08,
        loss_burst=10,
        reorder_fraction=0.02,
        duplicate_fraction=0.02,
        timestamp_jitter_std=2e-4,
        clock_drift=200e-6,
        gain_step_db=3.0,
        n_gain_steps=2,
        truncate_fraction=0.03,
    ),
}


@pytest.fixture(scope="module")
def robust_trace():
    """A dedicated trace with module-owned RNGs (order-independent)."""
    rng = np.random.default_rng(777)
    grid = make_grid().grouped(30)
    field = uniform_field(20.0, 15.0, n_scatterers=60, rng=rng)
    channel = MultipathChannel(scatterers=field, grid=grid, los_gain=0.5)
    sampler = CsiSampler(
        channel=channel,
        tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=2),
        impairments=ImpairmentConfig(snr_db=25.0),
        rng=np.random.default_rng(778),
    )
    trajectory = line_trajectory((10.0, 8.0), 0.0, 0.5, 3.0)
    return sampler.sample(trajectory, linear_array(3))


class TestFaultPlan:
    def test_clean_plan_is_identity(self, robust_trace):
        assert FaultPlan().apply(robust_trace) is robust_trace

    def test_deterministic(self, robust_trace):
        plan = FaultPlan(seed=5, loss_rate=0.1, reorder_fraction=0.05)
        a = plan.apply(robust_trace)
        b = plan.apply(robust_trace)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(
            np.isnan(a.data.real), np.isnan(b.data.real)
        )

    def test_dead_chain_is_all_nan(self, robust_trace):
        faulted = FaultPlan(seed=1, dead_chains=(1,)).apply(robust_trace)
        assert np.isnan(faulted.data[:, 1]).all()
        assert np.isfinite(faulted.data[:, 0]).any()

    def test_duplicates_lengthen_the_stream(self, robust_trace):
        faulted = FaultPlan(seed=2, duplicate_fraction=0.1).apply(robust_trace)
        assert faulted.data.shape[0] > robust_trace.data.shape[0]
        assert np.any(np.diff(faulted.times) == 0.0)

    def test_reordering_breaks_monotonicity(self, robust_trace):
        faulted = FaultPlan(seed=3, reorder_fraction=0.2).apply(robust_trace)
        assert np.any(np.diff(faulted.times) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_burst=0)
        with pytest.raises(ValueError):
            FaultPlan(dead_chains=(-1,))

    def test_from_spec_roundtrip(self):
        plan = FaultPlan.from_spec("dead_chain=0+2,loss=0.1,burst=12,seed=7")
        assert plan.dead_chains == (0, 2)
        assert plan.loss_rate == pytest.approx(0.1)
        assert plan.loss_burst == 12
        assert plan.seed == 7
        assert FaultPlan.from_spec("").is_clean

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("bogus=1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("loss")


class TestGuardTrace:
    def test_clean_trace_untouched(self, robust_trace):
        guarded, report = guard_trace(robust_trace, policy="repair")
        assert guarded is robust_trace
        assert report.repairs() == {}
        assert report.dead_chains == []

    def test_repair_restores_order_and_dedups(self, robust_trace):
        plan = FaultPlan(seed=4, reorder_fraction=0.1, duplicate_fraction=0.05)
        faulted = plan.apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="repair")
        assert np.all(np.diff(guarded.times) > 0)
        assert guarded.data.shape[0] == robust_trace.data.shape[0]
        assert report.duplicates_dropped > 0
        assert report.reordered_repaired > 0
        np.testing.assert_allclose(guarded.times, robust_trace.times)

    def test_raise_policy_raises(self, robust_trace):
        faulted = FaultPlan(seed=4, reorder_fraction=0.1).apply(robust_trace)
        with pytest.raises(GuardError):
            guard_trace(faulted, policy="raise")

    def test_drop_policy_keeps_monotonic_subsequence(self, robust_trace):
        faulted = FaultPlan(seed=4, reorder_fraction=0.1).apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="drop")
        assert np.all(np.diff(guarded.times) > 0)
        assert report.dropped_nonmonotonic > 0

    def test_dead_chain_detected_and_masked(self, robust_trace):
        faulted = FaultPlan(seed=5, dead_chains=(2,)).apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="repair")
        assert report.dead_chains == [2]
        assert report.chain_liveness[2] == pytest.approx(0.0)
        assert np.isnan(guarded.data[:, 2]).all()

    def test_truncated_packets_become_losses(self, robust_trace):
        faulted = FaultPlan(seed=6, truncate_fraction=0.1).apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="repair")
        assert report.truncated_packets > 0
        nan_tones = np.isnan(guarded.data.real)
        partial = nan_tones.any(axis=(2, 3)) & ~nan_tones.all(axis=(2, 3))
        assert not partial.any()

    def test_clock_drift_resampled(self, robust_trace):
        faulted = FaultPlan(seed=7, clock_drift=0.05).apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="repair")
        assert report.clock_resampled
        assert report.drift_estimate == pytest.approx(0.05, rel=0.05)
        nominal_dt = 1.0 / robust_trace.trajectory.sampling_rate
        np.testing.assert_allclose(np.diff(guarded.times), nominal_dt, rtol=1e-6)

    def test_loss_rate_excludes_dead_chains(self, robust_trace):
        plan = FaultPlan(seed=8, dead_chains=(0,), loss_rate=0.1, loss_burst=8)
        _, report = guard_trace(plan.apply(robust_trace), policy="repair")
        # A dead chain must not inflate the loss number toward 1/n_rx.
        assert 0.02 < report.loss_rate < 0.25

    def test_off_policy_is_a_bypass(self, robust_trace):
        faulted = FaultPlan(seed=4, reorder_fraction=0.1).apply(robust_trace)
        guarded, report = guard_trace(faulted, policy="off")
        assert guarded is faulted
        assert report.policy == "off"


class TestStreamGuard:
    def test_rejects_duplicates_and_late_packets(self):
        guard = StreamGuard(policy="repair")
        pkt = np.ones((3, 2, 8), dtype=np.complex64)
        assert guard.admit(pkt, 0.0) is not None
        assert guard.admit(pkt, 0.0) is None  # duplicate
        assert guard.admit(pkt, -1.0) is None  # late
        assert guard.admit(pkt, 0.01) is not None
        counters = guard.drain_counters()
        assert counters["duplicates_dropped"] == 1
        assert counters["dropped_nonmonotonic"] == 1
        assert guard.drain_counters() == {}

    def test_raise_policy(self):
        guard = StreamGuard(policy="raise")
        pkt = np.ones((3, 2, 8), dtype=np.complex64)
        guard.admit(pkt, 0.0)
        with pytest.raises(GuardError):
            guard.admit(pkt, 0.0)
        with pytest.raises(GuardError):
            guard.admit(pkt, np.nan)

    def test_truncated_packet_masked(self):
        guard = StreamGuard(policy="repair")
        pkt = np.ones((3, 2, 8), dtype=np.complex64)
        pkt[1, :, 5:] = np.nan
        admitted, _ = guard.admit(pkt, 0.0)
        assert np.isnan(admitted[1]).all()
        assert np.isfinite(admitted[0]).all()
        assert guard.drain_counters()["truncated_packets"] == 1


class TestFaultMatrix:
    """Every fault class processes without exception under repair."""

    @pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
    def test_batch_no_crash(self, robust_trace, fault):
        faulted = FAULT_MATRIX[fault].apply(robust_trace)
        result = Rim(CFG).process(faulted)
        assert result.health is not None
        assert np.isfinite(result.total_distance)
        # A single fault class must never wipe the estimate entirely.
        assert result.total_distance >= 0.0

    @pytest.mark.parametrize(
        "fault", ["dead_chain", "loss_bursts", "duplication", "everything"]
    )
    def test_stream_no_crash(self, robust_trace, fault):
        stream = StreamingRim(
            robust_trace.array,
            robust_trace.sampling_rate,
            CFG,
            block_seconds=1.0,
            carrier_wavelength=robust_trace.carrier_wavelength,
        )
        updates = []
        for packet, ts in FAULT_MATRIX[fault].iter_packets(robust_trace):
            update = stream.push(packet, ts)
            if update is not None:
                updates.append(update)
        final = stream.flush()
        if final is not None:
            updates.append(final)
        assert updates
        assert np.isfinite(stream.total_distance)
        assert all(u.health is not None for u in updates)


class TestAcceptance:
    """The ISSUE acceptance scenario, end to end."""

    def test_bursty_loss_plus_dead_chain(self, robust_trace):
        truth = robust_trace.trajectory.total_distance
        clean_err = abs(Rim(CFG).process(robust_trace).total_distance - truth)

        plan = FaultPlan(seed=4, loss_rate=0.10, loss_burst=10, dead_chains=(2,))
        result = Rim(CFG).process(plan.apply(robust_trace))
        fault_err = abs(result.total_distance - truth)
        assert fault_err <= 2.0 * clean_err

        health = result.health
        assert health is not None
        assert 2 in health.dead_chains
        assert health.chain_liveness[2] == pytest.approx(0.0)
        assert 0.05 <= health.loss_rate <= 0.20
        assert health.usable_pairs >= 1

    def test_all_chains_dead_degrades_not_crashes(self, robust_trace):
        plan = FaultPlan(seed=9, dead_chains=(0, 1, 2))
        result = Rim(CFG).process(plan.apply(robust_trace))
        health = result.health
        assert health.degraded
        assert health.heading_unresolved
        assert health.usable_pairs == 0
        assert np.isnan(result.motion.heading).all()
        assert result.total_distance == pytest.approx(0.0)

    def test_streaming_holds_last_good_speed(self, robust_trace):
        """A mid-stream total blackout holds speed instead of zeroing it."""
        stream = StreamingRim(
            robust_trace.array,
            robust_trace.sampling_rate,
            CFG,
            block_seconds=1.0,
            carrier_wavelength=robust_trace.carrier_wavelength,
        )
        t = robust_trace.n_samples
        updates = []
        for k in range(t):
            packet = robust_trace.data[k]
            if k >= 2 * t // 3:  # all chains die for the last third
                packet = np.full_like(packet, np.nan)
            update = stream.push(packet, robust_trace.times[k])
            if update is not None:
                updates.append(update)
        final = stream.flush()
        if final is not None:
            updates.append(final)
        degraded = [u for u in updates if u.health is not None and u.health.degraded]
        assert degraded
        last = degraded[-1]
        moving = last.moving
        assert np.isnan(last.heading[moving]).all()
        # Held speed comes from the healthy prefix of the walk (~0.5 m/s).
        assert np.all(last.speed[moving] > 0.2)


class TestDegradationPolicy:
    def test_apply_degradation_holds_speed_and_masks_heading(self):
        from repro.core.motion import MotionEstimate

        t = 10
        motion = MotionEstimate(
            times=np.arange(t) / 10.0,
            moving=np.ones(t, dtype=bool),
            speed=np.full(t, 1.0),
            heading=np.zeros(t),
            group_choice=np.zeros(t, dtype=np.int64),
        )
        health = HealthReport(n_samples=t, n_chains=3, usable_pairs=0)
        degraded = apply_degradation(motion, health, min_pairs=1, last_good_speed=0.7)
        assert health.degraded and health.heading_unresolved
        np.testing.assert_allclose(degraded.speed, 0.7)
        assert np.isnan(degraded.heading).all()

    def test_no_degradation_when_enough_pairs(self):
        from repro.core.motion import MotionEstimate

        motion = MotionEstimate(
            times=np.zeros(1),
            moving=np.zeros(1, dtype=bool),
            speed=np.zeros(1),
            heading=np.zeros(1),
            group_choice=np.zeros(1, dtype=np.int64),
        )
        health = HealthReport(n_samples=1, n_chains=3, usable_pairs=3)
        assert apply_degradation(motion, health, min_pairs=1) is motion
        assert not health.degraded
