"""Antenna-pair bookkeeping (§3.1, §4.2).

Each unordered antenna pair (i, j) supports motion measurement along the two
directions of the line through the antennas: positive alignment lag means
antenna j leads (heading = ray i→j), negative lag means antenna i leads.

Parallel *isometric* pairs (same separation, parallel axis — e.g. hexagon
pairs (0,3)∥(2,5) in our numbering) share alignment delays, so their
alignment matrices can be averaged for robustness (§4.2); ``parallel_groups``
computes that grouping.  ``adjacent_ring_pairs`` lists consecutive antennas
of a circular array, the pairs that align simultaneously under rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arrays.geometry import AntennaArray


@dataclass(frozen=True)
class AntennaPair:
    """One unordered antenna pair and its geometry.

    Attributes:
        i: First antenna index.
        j: Second antenna index.
        separation: Distance between the antennas, meters (Δd).
        axis_angle: Array-frame angle of the ray i→j, radians in (-π, π].
    """

    i: int
    j: int
    separation: float
    axis_angle: float

    def heading(self, lag_sign: int, orientation: float = 0.0) -> float:
        """World heading implied by an alignment with the given lag sign.

        A positive lag means antenna j's past footprints are being retraced
        by antenna i... no: a positive lag means the *pair ray i→j* points
        along the motion (antenna j leads, antenna i follows); negative lag
        flips the direction (§4.4).
        """
        angle = self.axis_angle + orientation
        if lag_sign < 0:
            angle += np.pi
        return float(np.arctan2(np.sin(angle), np.cos(angle)))


def all_pairs(array: AntennaArray) -> List[AntennaPair]:
    """All m(m-1)/2 unordered pairs of an array."""
    pairs = []
    for i in range(array.n_antennas):
        for j in range(i + 1, array.n_antennas):
            pairs.append(
                AntennaPair(
                    i=i,
                    j=j,
                    separation=array.separation(i, j),
                    axis_angle=array.pair_direction(i, j),
                )
            )
    return pairs


def supported_directions(array: AntennaArray, tol: float = 1e-6) -> np.ndarray:
    """The discrete set of world directions an array can resolve.

    Each pair contributes its axis angle and the opposite; parallel pairs
    collapse.  The hexagonal array yields 12 directions at 30° resolution.

    Returns:
        Sorted unique angles in radians within (-π, π].
    """
    angles = []
    for pair in all_pairs(array):
        for extra in (0.0, np.pi):
            a = pair.axis_angle + extra
            angles.append(np.arctan2(np.sin(a), np.cos(a)))
    angles = np.asarray(angles)
    angles = np.where(np.isclose(angles, -np.pi, atol=tol), np.pi, angles)
    order = np.argsort(angles)
    angles = angles[order]
    keep = [0]
    for k in range(1, len(angles)):
        if angles[k] - angles[keep[-1]] > tol:
            keep.append(k)
    return angles[keep]


def parallel_groups(
    array: AntennaArray,
    angle_tol: float = 1e-6,
    separation_rtol: float = 1e-3,
) -> List[List[AntennaPair]]:
    """Group pairs that are parallel and isometric.

    Pairs in a group share the alignment delay for any translation, so their
    alignment matrices can be averaged (§4.2).  Pairs whose rays point in
    opposite senses are put in the same group with indices swapped so all
    members share the ray direction.
    """
    pairs = all_pairs(array)
    groups: List[List[AntennaPair]] = []
    for pair in pairs:
        placed = False
        for group in groups:
            ref = group[0]
            if not np.isclose(
                ref.separation, pair.separation, rtol=separation_rtol
            ):
                continue
            delta = _angle_diff(pair.axis_angle, ref.axis_angle)
            if abs(delta) <= angle_tol:
                group.append(pair)
                placed = True
                break
            if abs(abs(delta) - np.pi) <= angle_tol:
                group.append(
                    AntennaPair(
                        i=pair.j,
                        j=pair.i,
                        separation=pair.separation,
                        axis_angle=ref.axis_angle,
                    )
                )
                placed = True
                break
        if not placed:
            groups.append([pair])
    return groups


def adjacent_ring_pairs(array: AntennaArray) -> List[AntennaPair]:
    """Consecutive-antenna pairs around a circular array.

    Under in-place rotation, *every* adjacent pair aligns simultaneously
    (§3.1) — the signature RIM uses to tell rotation from translation.
    Antennas are ordered around the ring by angle.
    """
    if not array.circular:
        raise ValueError("adjacent pairs are defined only for circular arrays")
    angles = np.arctan2(array.local_positions[:, 1], array.local_positions[:, 0])
    order = np.argsort(angles)
    pairs = []
    m = array.n_antennas
    for k in range(m):
        i = int(order[k])
        j = int(order[(k + 1) % m])
        pairs.append(
            AntennaPair(
                i=i,
                j=j,
                separation=array.separation(i, j),
                axis_angle=array.pair_direction(i, j),
            )
        )
    return pairs


def best_pair_for_direction(
    array: AntennaArray, direction: float, orientation: float = 0.0
) -> Tuple[AntennaPair, int]:
    """The pair (and lag sign) whose axis is closest to a world direction.

    Returns:
        (pair, sign) such that ``pair.heading(sign, orientation)`` is the
        resolvable direction nearest to ``direction``.
    """
    best = None
    best_err = np.inf
    best_sign = 1
    for pair in all_pairs(array):
        for sign in (1, -1):
            err = abs(_angle_diff(pair.heading(sign, orientation), direction))
            if err < best_err:
                best = pair
                best_err = err
                best_sign = sign
    return best, best_sign


def _angle_diff(a: float, b: float) -> float:
    """Signed angular difference a-b wrapped to (-π, π]."""
    d = a - b
    return float(np.arctan2(np.sin(d), np.cos(d)))
