"""Channel Impulse Response (CIR) domain utilities.

The paper defines TRRS first on CIRs (Eqn. 1) and notes the CFR form
(Eqn. 2) is used "in practice".  Real CSI tooling constantly moves between
the two domains — e.g. for power-delay-profile inspection, delay-spread
estimation, or tap-domain filtering — so this module provides the
conversions on the actual occupied-tone grid (DC and guard tones are not
reported by hardware and are zero-filled before the IFFT) plus the
standard delay-domain statistics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.channel.ofdm import SubcarrierGrid


def _fft_size(grid: SubcarrierGrid) -> int:
    return int(round(grid.bandwidth / grid.spacing))


def cfr_to_cir(cfr: np.ndarray, grid: SubcarrierGrid) -> np.ndarray:
    """Convert CFR vectors on the occupied-tone grid to CIR taps.

    Args:
        cfr: (..., S) complex CFR over ``grid.indices``.
        grid: The tone grid the CFR lives on.

    Returns:
        (..., N_fft) complex CIR taps (tap spacing = 1 / bandwidth).
    """
    cfr = np.asarray(cfr)
    if cfr.shape[-1] != grid.n_subcarriers:
        raise ValueError(
            f"CFR has {cfr.shape[-1]} tones, grid expects {grid.n_subcarriers}"
        )
    n_fft = _fft_size(grid)
    full = np.zeros(cfr.shape[:-1] + (n_fft,), dtype=np.complex128)
    idx = np.asarray(grid.indices, dtype=np.int64) % n_fft
    full[..., idx] = cfr
    return np.fft.ifft(full, axis=-1)


def cir_to_cfr(cir: np.ndarray, grid: SubcarrierGrid) -> np.ndarray:
    """Convert CIR taps back to the occupied-tone CFR (inverse of above)."""
    cir = np.asarray(cir)
    n_fft = _fft_size(grid)
    if cir.shape[-1] != n_fft:
        raise ValueError(f"CIR has {cir.shape[-1]} taps, grid expects {n_fft}")
    full = np.fft.fft(cir, axis=-1)
    idx = np.asarray(grid.indices, dtype=np.int64) % n_fft
    return full[..., idx]


def power_delay_profile(cfr: np.ndarray, grid: SubcarrierGrid) -> Tuple[np.ndarray, np.ndarray]:
    """Power-delay profile of (a batch of) CFRs.

    Returns:
        (delays_s, pdp): tap delays in seconds and the mean |CIR|² over all
        leading axes.
    """
    cir = cfr_to_cir(cfr, grid)
    power = np.abs(cir) ** 2
    while power.ndim > 1:
        power = power.mean(axis=0)
    n_fft = _fft_size(grid)
    delays = np.arange(n_fft) / grid.bandwidth
    return delays, power


def rms_delay_spread(cfr: np.ndarray, grid: SubcarrierGrid) -> float:
    """RMS delay spread in seconds (the standard multipath richness stat).

    Cyclic IFFT aliasing folds long delays; the estimate uses the taps up
    to half the unambiguous range, which covers indoor channels at 40 MHz
    (1.6 µs span ≫ real office spreads).
    """
    delays, pdp = power_delay_profile(cfr, grid)
    half = pdp.size // 2
    delays = delays[:half]
    pdp = pdp[:half]
    total = pdp.sum()
    if total <= 0:
        return 0.0
    mean_delay = float((delays * pdp).sum() / total)
    second = float((delays**2 * pdp).sum() / total)
    return float(np.sqrt(max(0.0, second - mean_delay**2)))


def coherence_bandwidth(cfr: np.ndarray, grid: SubcarrierGrid, level: float = 0.5) -> float:
    """Coherence bandwidth (Hz): frequency lag where |autocorr| drops to
    ``level`` of its zero-lag value, averaged over leading axes."""
    cfr = np.asarray(cfr)
    flat = cfr.reshape(-1, cfr.shape[-1])
    s = flat.shape[-1]
    corr = np.zeros(s)
    for lag in range(s):
        if lag == 0:
            num = (np.abs(flat) ** 2).sum(axis=-1)
            den = num
        else:
            num = np.abs((flat[:, lag:] * np.conj(flat[:, :-lag])).sum(axis=-1))
            den = np.sqrt(
                (np.abs(flat[:, lag:]) ** 2).sum(axis=-1)
                * (np.abs(flat[:, :-lag]) ** 2).sum(axis=-1)
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(den > 0, num / den, 0.0)
        corr[lag] = float(ratio.mean())
    below = np.nonzero(corr < level)[0]
    lag_c = float(below[0]) if below.size else float(s)
    return lag_c * grid.spacing
