"""TRRS (alignment) matrices (§3.2, Eqn. 5; Fig. 5).

For an antenna pair (i, j) the alignment matrix holds, for every time t and
lag l ∈ [-W, W], the virtual-massive-antenna TRRS between the multipath
profile of antenna i at t and that of antenna j at t - l:

    G[t, l] = κ(P_i(t), P_j(t - l))        (Eqns. 4-5)

Because Eqn. 4 averages κ̄ over a window of *consecutive* snapshot offsets,
G is exactly the single-snapshot TRRS matrix smoothed along the time axis
per lag column — so we compute the banded single-snapshot matrix with one
vectorized inner product per lag and then apply a NaN-aware moving average.
That identity turns an O(T·W·V) kernel into O(T·W) plus a cheap filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.trrs import normalize_csi, normalized_inner_trrs


@dataclass
class AlignmentMatrix:
    """A per-pair TRRS matrix over time and lag.

    Attributes:
        values: (T, L) TRRS values; NaN where the lag reaches outside the
            trace or a packet was lost.
        lags: (L,) integer sample lags, -W..W.
        sampling_rate: Packets per second (to convert lags to seconds).
        pair: (i, j) antenna indices this matrix belongs to (informational;
            averaged matrices keep the first pair of their group).
    """

    values: np.ndarray
    lags: np.ndarray
    sampling_rate: float
    pair: tuple

    @property
    def n_samples(self) -> int:
        return int(self.values.shape[0])

    @property
    def max_lag(self) -> int:
        return int(self.lags[-1])

    def lag_index(self, lag: int) -> int:
        """Column index of an integer lag."""
        idx = lag + self.max_lag
        if not 0 <= idx < len(self.lags):
            raise ValueError(f"lag {lag} outside ±{self.max_lag}")
        return idx

    def lag_seconds(self) -> np.ndarray:
        """Lags converted to seconds."""
        return self.lags / self.sampling_rate


def nan_moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average along axis 0, skipping NaNs.

    Args:
        x: (T, ...) data.
        window: Number of samples averaged (>=1); rounded up to odd.

    Returns:
        Array of the same shape; positions whose window holds no finite
        value are NaN.
    """
    if window <= 1:
        return np.asarray(x, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    half = window // 2
    mask = np.isfinite(x)
    filled = np.where(mask, x, 0.0)

    csum = np.cumsum(filled, axis=0)
    ccnt = np.cumsum(mask, axis=0)
    pad = np.zeros((1,) + x.shape[1:])
    csum = np.concatenate([pad, csum], axis=0)
    ccnt = np.concatenate([pad, ccnt], axis=0)

    t = x.shape[0]
    hi = np.minimum(np.arange(t) + half + 1, t)
    lo = np.maximum(np.arange(t) - half, 0)
    totals = csum[hi] - csum[lo]
    counts = ccnt[hi] - ccnt[lo]
    with np.errstate(divide="ignore", invalid="ignore"):
        out = totals / counts
    return np.where(counts > 0, out, np.nan)


def base_trrs_matrix(
    norm_i: np.ndarray,
    norm_j: np.ndarray,
    max_lag: int,
    time_stride: int = 1,
) -> np.ndarray:
    """Single-snapshot TX-averaged TRRS for every (time, lag) cell.

    Args:
        norm_i, norm_j: (T, n_tx, S) tone-normalized CFR sequences (see
            :func:`repro.core.trrs.normalize_csi`).
        max_lag: W; lags run -W..W.
        time_stride: Evaluate every ``time_stride``-th row only (used for
            the cheap pre-detection screen); skipped rows are NaN.

    Returns:
        (T, 2W+1) float64 matrix.
    """
    if norm_i.shape != norm_j.shape:
        raise ValueError(f"shape mismatch: {norm_i.shape} vs {norm_j.shape}")
    t = norm_i.shape[0]
    n_lags = 2 * max_lag + 1
    out = np.full((t, n_lags), np.nan)

    rows = np.arange(0, t, time_stride) if time_stride > 1 else None
    for col, lag in enumerate(range(-max_lag, max_lag + 1)):
        if lag >= 0:
            ti = slice(lag, t)
            tj = slice(0, t - lag)
        else:
            ti = slice(0, t + lag)
            tj = slice(-lag, t)
        if ti.stop is not None and ti.stop <= (ti.start or 0):
            continue
        a = norm_i[ti]
        b = norm_j[tj]
        if rows is not None:
            stop = ti.stop if ti.stop is not None else t
            valid = rows[(rows >= (ti.start or 0)) & (rows < stop)]
            if valid.size == 0:
                continue
            out[valid, col] = normalized_inner_trrs(norm_i[valid], norm_j[valid - lag])
        else:
            out[ti, col] = normalized_inner_trrs(a, b)
    return out


def alignment_matrix(
    csi_i: np.ndarray,
    csi_j: np.ndarray,
    max_lag: int,
    virtual_window: int,
    sampling_rate: float,
    pair: tuple = (-1, -1),
    time_stride: int = 1,
    normalized: bool = False,
) -> AlignmentMatrix:
    """Build the alignment matrix of one antenna pair (Eqn. 5).

    Args:
        csi_i, csi_j: (T, n_tx, S) CFR sequences of the two antennas
            (sanitized).  Pass ``normalized=True`` when already normalized.
        max_lag: Window half-width W in samples; must exceed the largest
            expected alignment delay (§3.2).
        virtual_window: Number of virtual massive antennas V (Eqn. 4).
        sampling_rate: Packet rate, Hz.
        pair: Antenna indices, recorded for diagnostics.
        time_stride: Row subsampling for pre-detection screens.
        normalized: Skip the normalization step.

    Returns:
        The :class:`AlignmentMatrix`.
    """
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    if virtual_window < 1:
        raise ValueError(f"virtual_window must be >= 1, got {virtual_window}")
    t = int(np.asarray(csi_i).shape[0])
    n_lags = 2 * max_lag + 1
    with obs.span(
        "alignment_matrix",
        pair=pair,
        shape=(t, n_lags),
        virtual_window=virtual_window,
        time_stride=time_stride,
    ):
        norm_i = csi_i if normalized else normalize_csi(csi_i)
        norm_j = csi_j if normalized else normalize_csi(csi_j)
        base = base_trrs_matrix(norm_i, norm_j, max_lag, time_stride=time_stride)
        if virtual_window > 1 and time_stride == 1:
            values = nan_moving_average(base, virtual_window)
        else:
            values = base
        obs.add("alignment.matrices", 1)
        obs.add("alignment.cells", len(range(0, t, max(1, time_stride))) * n_lags)
        lags = np.arange(-max_lag, max_lag + 1)
        return AlignmentMatrix(
            values=values, lags=lags, sampling_rate=sampling_rate, pair=pair
        )


def average_matrices(matrices: Sequence[AlignmentMatrix]) -> AlignmentMatrix:
    """NaN-aware average of alignment matrices of parallel isometric pairs.

    Parallel isometric pairs share the same alignment delays for any
    translation, so averaging their matrices boosts SNR (§4.2).
    """
    if not matrices:
        raise ValueError("need at least one matrix")
    first = matrices[0]
    for m in matrices[1:]:
        if m.values.shape != first.values.shape or m.max_lag != first.max_lag:
            raise ValueError("matrices must share shape and lag window")
    # Accumulate totals/counts in place instead of stacking all members
    # first: no (N, T, L) intermediate, one scratch buffer reused per
    # member.  Sequential accumulation matches nanmean's reduction order
    # for the small group sizes arrays produce, so values are unchanged.
    acc = np.zeros_like(first.values, dtype=np.float64)
    count = np.zeros(first.values.shape, dtype=np.int64)
    scratch = np.empty_like(acc)
    for m in matrices:
        finite = np.isfinite(m.values)
        np.copyto(scratch, m.values)
        np.copyto(scratch, 0.0, where=~finite)
        acc += scratch
        count += finite
    with np.errstate(invalid="ignore"):
        acc /= count  # all-NaN cells: 0/0 -> NaN, matching nanmean
    return AlignmentMatrix(
        values=acc,
        lags=first.lags.copy(),
        sampling_rate=first.sampling_rate,
        pair=first.pair,
    )
