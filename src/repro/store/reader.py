"""Integrity-checked reads of a chunked trace store: :class:`TraceReader`.

The reader scans the store's chunk files on open (headers only — payloads
stay on disk until asked for), validates the monotonic sequence, and then
serves random access (:meth:`TraceReader.read_chunk`), lazy iteration
(:meth:`TraceReader.iter_chunks`), or whole-trace assembly
(:meth:`TraceReader.read_trace`), optionally via ``mmap`` for zero-copy
payloads.

Faults surface through the same guard-policy vocabulary as the rest of
the ingestion stack (:mod:`repro.robustness.guard`):

* ``"raise"``  — any fault raises :class:`StoreCorruptionError` (a
  :class:`~repro.robustness.guard.GuardError`) when detected: structural
  faults (torn chunks, bad/duplicate/missing sequence numbers) at open,
  payload CRC mismatches at read.
* ``"drop"``   — faulty chunks are skipped; every action is counted.
* ``"repair"`` — faulty or missing chunks are replaced with NaN (lost)
  packets on the nominal clock when the store's sampling rate and a time
  anchor are known, so the downstream pipeline sees a clean loss burst
  instead of a silent time jump; otherwise degrades to drop.

Everything the reader saw and did is counted in a :class:`StoreReport`
whose :meth:`StoreReport.repairs` dict feeds
:class:`~repro.robustness.health.HealthReport` during replay, and the
``store.*`` metrics in :mod:`repro.obs` mirror the same counters.
"""

from __future__ import annotations

import json
import mmap as mmap_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.arrays.geometry import AntennaArray
from repro.channel.sampler import CsiTrace
from repro.obs.flight import FLIGHT
from repro.io import (
    array_from_manifest,
    check_format_version,
    trajectory_from_manifest,
)
from repro.motionsim.trajectory import Trajectory
from repro.robustness.guard import POLICIES
from repro.store.format import (
    CHUNK_GLOB,
    HEADER_SIZE,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    SUPPORTED_MANIFEST_VERSIONS,
    ChunkHeader,
    StoreCorruptionError,
    StoreError,
    payload_nbytes,
    seq_from_filename,
    unpack_header,
    unpack_payload,
)

READ_POLICIES = ("raise", "drop", "repair")


@dataclass
class StoreReport:
    """What the reader saw and did to one store (mirrors ``GuardReport``).

    Attributes:
        policy: The read policy that produced this report.
        n_chunks: Structurally valid chunks indexed at open.
        n_chunks_read: Chunks whose payload was read and CRC-verified.
        n_samples_read: Samples delivered (including NaN fills).
        crc_failed: Chunks whose payload failed its CRC-32.
        crc_nanfilled: CRC-failed chunks replaced by NaN loss bursts.
        chunks_dropped: Faulty chunks skipped outright.
        seq_gaps: Missing sequence numbers detected at open.
        gap_samples_filled: NaN samples synthesized for missing chunks.
        duplicates_dropped: Chunks whose header sequence number clashed
            with their file name or an already-indexed chunk.
        torn_chunks_truncated: Torn (partially written) final chunks
            discarded on open — the crash-recovery path.
    """

    policy: str
    n_chunks: int = 0
    n_chunks_read: int = 0
    n_samples_read: int = 0
    crc_failed: int = 0
    crc_nanfilled: int = 0
    chunks_dropped: int = 0
    seq_gaps: int = 0
    gap_samples_filled: int = 0
    duplicates_dropped: int = 0
    torn_chunks_truncated: int = 0

    def repairs(self) -> Dict[str, int]:
        """Nonzero counters, keyed for a ``HealthReport.repairs`` merge."""
        counters = {
            "store_crc_failed": self.crc_failed,
            "store_crc_nanfilled": self.crc_nanfilled,
            "store_chunks_dropped": self.chunks_dropped,
            "store_seq_gaps": self.seq_gaps,
            "store_gap_samples_filled": self.gap_samples_filled,
            "store_duplicates_dropped": self.duplicates_dropped,
            "store_torn_truncated": self.torn_chunks_truncated,
        }
        return {k: v for k, v in counters.items() if v}


@dataclass
class ChunkRecord:
    """One unit of replay: a decoded (or synthesized) chunk.

    Attributes:
        index: Position in the reader's entry sequence (checkpoint cursor).
        seq: On-disk chunk sequence number.
        data: (n, n_rx, n_tx, S) complex64 samples (NaN for fills).
        times: (n,) float64 timestamps.
        repairs: Store repairs attributable to THIS record (empty for a
            clean chunk) — folded into the next health report on replay.
    """

    index: int
    seq: int
    data: np.ndarray
    times: np.ndarray
    repairs: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Entry:
    kind: str  # "chunk" | "gap"
    seq: int
    path: Optional[Path] = None
    header: Optional[ChunkHeader] = None
    n_samples: int = 0  # gap entries: estimated fill length


class TraceReader:
    """Random-access, integrity-checked view of one store directory.

    Args:
        root: Store directory (must hold a manifest).
        policy: ``"raise"``, ``"drop"``, or ``"repair"`` (see module docs).
        use_mmap: Map chunk files instead of reading them; decoded arrays
            are zero-copy read-only views valid until :meth:`close`.
    """

    def __init__(self, root, policy: str = "repair", use_mmap: bool = False):
        if policy not in READ_POLICIES:
            raise ValueError(
                f"unknown store policy {policy!r}; want one of {READ_POLICIES} "
                f"(the guard's {POLICIES} minus 'off': a store read is never "
                "unchecked)"
            )
        self.root = Path(root)
        self.policy = policy
        self.use_mmap = bool(use_mmap)
        self.report = StoreReport(policy=policy)
        self._mmaps: List[mmap_module.mmap] = []
        self._closed = False

        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"{self.root} is not a trace store (no manifest)")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            self.manifest: Dict[str, Any] = json.load(fh)
        if self.manifest.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"{manifest_path} is not a {MANIFEST_FORMAT} manifest "
                f"(format={self.manifest.get('format')!r})"
            )
        check_format_version(
            self.manifest.get("format_version"),
            SUPPORTED_MANIFEST_VERSIONS,
            what="trace store manifest",
        )
        self.sample_shape: Tuple[int, ...] = tuple(
            int(s) for s in self.manifest["sample_shape"]
        )
        self.array: AntennaArray = array_from_manifest(self.manifest["array"])
        self.carrier_wavelength = float(self.manifest["carrier_wavelength"])
        self.chunk_samples = int(self.manifest["chunk_samples"])
        rate = self.manifest.get("sampling_rate")
        self.sampling_rate: Optional[float] = None if rate is None else float(rate)
        self.closed_cleanly = bool(self.manifest.get("closed", False))
        traj = self.manifest.get("trajectory")
        self.trajectory: Optional[Trajectory] = (
            None if traj is None else trajectory_from_manifest(traj)
        )
        tx = self.manifest.get("tx_positions")
        self.tx_positions: Optional[np.ndarray] = (
            None if tx is None else np.asarray(tx, dtype=np.float64)
        )

        self._entries: List[_Entry] = []
        self._scan_chunks()

    # -- open-time structural scan ------------------------------------------

    def _fault(self, exc: StoreCorruptionError, counter: str) -> None:
        """Count a structural fault; raise it under the ``raise`` policy."""
        setattr(self.report, counter, getattr(self.report, counter) + 1)
        if counter == "seq_gaps":
            obs.add("store.seq_gaps", 1)
        else:
            obs.add("store.structural_faults", 1)
        FLIGHT.record(
            "store_fault", "store", counter=counter, error=str(exc),
            policy=self.policy,
        )
        if self.policy == "raise":
            raise exc

    def _scan_chunks(self) -> None:
        files = sorted(self.root.glob(CHUNK_GLOB))
        last_name_seq = seq_from_filename(files[-1].name) if files else -1
        seen: Dict[int, _Entry] = {}
        for path in files:
            name_seq = seq_from_filename(path.name)
            size = path.stat().st_size
            is_last = name_seq == last_name_seq
            if size < HEADER_SIZE:
                if is_last:
                    self._fault(
                        StoreCorruptionError(
                            f"{path.name}: torn final chunk ({size} bytes)"
                        ),
                        "torn_chunks_truncated",
                    )
                    continue
                self._fault(
                    StoreCorruptionError(f"{path.name}: truncated header"),
                    "crc_failed",
                )
                self.report.chunks_dropped += 1
                continue
            with open(path, "rb") as fh:
                head = fh.read(HEADER_SIZE)
            try:
                header = unpack_header(head, where=path.name)
            except StoreCorruptionError as exc:
                self._fault(exc, "crc_failed")
                self.report.chunks_dropped += 1
                continue
            if header.seq != name_seq or header.seq in seen:
                self._fault(
                    StoreCorruptionError(
                        f"{path.name}: duplicate/mismatched sequence number "
                        f"{header.seq}"
                    ),
                    "duplicates_dropped",
                )
                continue
            expected = HEADER_SIZE + header.payload_bytes
            if size < expected:
                if is_last:
                    self._fault(
                        StoreCorruptionError(
                            f"{path.name}: torn final chunk "
                            f"({size} of {expected} bytes)"
                        ),
                        "torn_chunks_truncated",
                    )
                    continue
                self._fault(
                    StoreCorruptionError(
                        f"{path.name}: truncated payload "
                        f"({size} of {expected} bytes)"
                    ),
                    "crc_failed",
                )
                self.report.chunks_dropped += 1
                continue
            if header.payload_bytes != payload_nbytes(
                header.n_samples, self.sample_shape
            ):
                self._fault(
                    StoreCorruptionError(
                        f"{path.name}: payload length disagrees with "
                        f"{header.n_samples} samples of {self.sample_shape}"
                    ),
                    "crc_failed",
                )
                self.report.chunks_dropped += 1
                continue
            seen[header.seq] = _Entry(
                kind="chunk", seq=header.seq, path=path, header=header
            )

        expected_seq = 0
        for seq in sorted(seen):
            for gap_seq in range(expected_seq, seq):
                self._fault(
                    StoreCorruptionError(f"missing chunk seq {gap_seq}"),
                    "seq_gaps",
                )
                if self.policy == "repair":
                    self._entries.append(
                        _Entry(
                            kind="gap",
                            seq=gap_seq,
                            n_samples=self.chunk_samples,
                        )
                    )
            self._entries.append(seen[seq])
            expected_seq = seq + 1
        self.report.n_chunks = len(seen)

    # -- store geometry ------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        """Structurally valid chunks (payloads not yet CRC-verified)."""
        return self.report.n_chunks

    @property
    def n_entries(self) -> int:
        """Replay units: valid chunks plus (under ``repair``) gap fills."""
        return len(self._entries)

    @property
    def n_samples(self) -> int:
        """Samples across valid chunks, per their headers."""
        return sum(
            e.header.n_samples for e in self._entries if e.header is not None
        )

    def __len__(self) -> int:
        return self.n_chunks

    def _nominal_dt(self) -> Optional[float]:
        if self.sampling_rate and self.sampling_rate > 0:
            return 1.0 / self.sampling_rate
        return None

    # -- access --------------------------------------------------------------

    def read_chunk(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Random access: decode the ``k``-th valid chunk, verifying its CRC.

        Explicit random access never papers over corruption — a CRC
        mismatch raises regardless of policy.

        Returns:
            ``(data, times)``.
        """
        chunks = [e for e in self._entries if e.kind == "chunk"]
        entry = chunks[k]  # IndexError is the right error here
        return self._load_payload(entry)

    def iter_chunks(
        self, start: int = 0, last_time: Optional[float] = None
    ) -> Iterator[ChunkRecord]:
        """Lazily decode chunks in sequence order, applying the policy.

        Args:
            start: Entry index to resume from (a checkpoint cursor).
            last_time: Timestamp of the sample preceding ``start`` — the
                clock anchor for NaN fills right at the resume point.
        """
        dt = self._nominal_dt()
        for index in range(start, len(self._entries)):
            entry = self._entries[index]
            if entry.kind == "gap":
                # The gap itself was counted (store_seq_gaps) at open; the
                # record only reports the read-time fill.
                record = self._fill_record(
                    index, entry, last_time, dt, "gap_samples_filled",
                    base={},
                )
                if record is None:
                    continue
                last_time = float(record.times[-1])
                yield record
                continue
            try:
                data, times = self._load_payload(entry)
            except StoreCorruptionError as exc:
                self.report.crc_failed += 1
                obs.add("store.crc_failures", 1)
                FLIGHT.record(
                    "store_fault", "store", counter="crc_failed",
                    error=str(exc), policy=self.policy, seq=entry.seq,
                )
                if self.policy == "raise":
                    raise
                record = self._fill_record(
                    index, entry, last_time, dt, "crc_nanfilled",
                    base={"store_crc_failed": 1},
                )
                if record is None:
                    self.report.chunks_dropped += 1
                    continue
                last_time = float(record.times[-1])
                yield record
                continue
            self.report.n_chunks_read += 1
            self.report.n_samples_read += int(times.size)
            if times.size:
                last_time = float(times[-1])
            yield ChunkRecord(index=index, seq=entry.seq, data=data, times=times)

    def _fill_record(
        self,
        index: int,
        entry: _Entry,
        last_time: Optional[float],
        dt: Optional[float],
        counter: str,
        base: Dict[str, int],
    ) -> Optional[ChunkRecord]:
        """NaN loss burst standing in for a missing/corrupt chunk.

        Possible only under ``repair`` with a known nominal clock and a
        time anchor; otherwise the chunk is dropped (counted by caller's
        ``base`` merge staying in the report).
        """
        n = entry.n_samples or (
            entry.header.n_samples if entry.header is not None else 0
        )
        if self.policy != "repair" or dt is None or last_time is None or n <= 0:
            return None
        increment = n if counter == "gap_samples_filled" else 1
        setattr(self.report, counter, getattr(self.report, counter) + increment)
        self.report.n_samples_read += n
        times = last_time + dt * np.arange(1, n + 1)
        data = np.full(
            (n, *self.sample_shape), np.nan + 1j * np.nan, dtype=np.complex64
        )
        repairs = dict(base)
        repairs[f"store_{counter}"] = n if counter == "gap_samples_filled" else 1
        FLIGHT.record(
            "store_repair", "store", counter=counter, seq=entry.seq,
            n_samples=n,
        )
        return ChunkRecord(
            index=index, seq=entry.seq, data=data, times=times, repairs=repairs
        )

    def read_trace(self) -> CsiTrace:
        """Assemble the whole store into a :class:`CsiTrace`.

        Ground truth comes from the manifest when present; a store
        recorded live (no truth) gets a zero placeholder trajectory on
        the recorded clock, exactly like the streaming estimator builds.
        """
        datas, times_parts = [], []
        for record in self.iter_chunks():
            datas.append(record.data)
            times_parts.append(record.times)
        if not datas:
            raise StoreError(f"{self.root} holds no readable chunks")
        data = np.concatenate(datas, axis=0)
        times = np.concatenate(times_parts, axis=0)
        trajectory = self.trajectory
        if trajectory is None or trajectory.times.shape != times.shape:
            n = times.size
            trajectory = Trajectory(
                times=times,
                positions=np.zeros((n, 2)),
                orientations=np.zeros(n),
            )
        tx = self.tx_positions
        if tx is None:
            tx = np.zeros((self.sample_shape[1], 2))
        return CsiTrace(
            data=data,
            times=times,
            array=self.array,
            trajectory=trajectory,
            tx_positions=tx,
            carrier_wavelength=self.carrier_wavelength,
        )

    def verify(self) -> StoreReport:
        """Full integrity scan (every payload CRC) without raising.

        Returns:
            A fresh :class:`StoreReport`; the reader's own report is
            untouched.
        """
        scanner = TraceReader(self.root, policy="drop", use_mmap=self.use_mmap)
        try:
            for _ in scanner.iter_chunks():
                pass
            return scanner.report
        finally:
            scanner.close()

    # -- internals -----------------------------------------------------------

    def _load_payload(self, entry: _Entry) -> Tuple[np.ndarray, np.ndarray]:
        assert entry.path is not None and entry.header is not None
        header = entry.header
        t0 = time.perf_counter()
        with open(entry.path, "rb") as fh:
            if self.use_mmap:
                mm = mmap_module.mmap(fh.fileno(), 0, access=mmap_module.ACCESS_READ)
                self._mmaps.append(mm)
                payload: Any = memoryview(mm)[
                    HEADER_SIZE : HEADER_SIZE + header.payload_bytes
                ]
                copy = False
            else:
                fh.seek(HEADER_SIZE)
                payload = fh.read(header.payload_bytes)
                copy = True
        data, times = unpack_payload(
            header,
            payload,
            self.sample_shape,
            where=entry.path.name,
            copy=copy,
        )
        obs.observe(
            "store.chunk_read_s",
            time.perf_counter() - t0,
            bounds=obs.LATENCY_BOUNDS_S,
        )
        obs.add("store.chunks_read", 1)
        obs.add("store.bytes_read", HEADER_SIZE + header.payload_bytes)
        return data, times

    def close(self) -> None:
        """Release mmap handles (views returned in mmap mode die with them)."""
        if self._closed:
            return
        for mm in self._mmaps:
            try:
                mm.close()
            except BufferError:  # a view outlived the reader; leave it mapped
                pass
        self._mmaps = []
        self._closed = True

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
