#!/usr/bin/env python
"""Indoor tracking over an office floor (the Fig. 20 / Fig. 21 scenarios).

Two deployments:

1. **Pure RIM** with the 6-element hexagonal array — including *sideway*
   segments where the cart changes heading without turning (invisible to
   gyroscopes and magnetometers).
2. **RIM + gyroscope + particle filter** with a single 3-antenna NIC —
   RIM supplies precise distance, the gyro supplies heading through turns,
   and the floorplan particle filter prunes wall-crossing hypotheses.

Run:  python examples/indoor_tracking.py
"""

import numpy as np

from repro import Rim, RimConfig, hexagonal_array, linear_array
from repro.apps.tracking import track_pure_rim, track_with_imu_fusion
from repro.eval.setup import make_testbed
from repro.motionsim.profiles import polyline_trajectory


def ascii_track(floorplan, tracks, width=72, height=24):
    """Render trajectories onto a terminal-sized floor map."""
    canvas = [[" "] * width for _ in range(height)]
    for symbol, points in tracks:
        for x, y in points:
            col = int(x / floorplan.width * (width - 1))
            row = int((1 - y / floorplan.height) * (height - 1))
            if 0 <= row < height and 0 <= col < width:
                canvas[row][col] = symbol
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in canvas] + [border])


def main():
    bed = make_testbed(seed=7)
    ap = tuple(round(float(v), 1) for v in bed.ap_position)
    print(f"office floor: {bed.floorplan.width} x {bed.floorplan.height} m, "
          f"AP at site 0 = {ap} (far corner, mostly NLOS)")

    # --- Deployment 1: pure RIM with sideway moves --------------------
    waypoints = np.array(
        [(6.0, 13.0), (18.0, 13.0), (18.0, 16.0), (30.0, 16.0), (30.0, 13.0)]
    )
    truth = polyline_trajectory(waypoints, speed=1.0)  # orientation fixed!
    outcome = track_pure_rim(
        bed.sampler, hexagonal_array(), truth, rim=Rim(RimConfig(max_lag=60))
    )
    print(f"\n[pure RIM] trace length {truth.total_distance:.1f} m "
          f"with 2 sideway direction changes")
    print(f"  median path error : {outcome.summary['median'] * 100:6.1f} cm")
    print(f"  p90 path error    : {outcome.summary['p90'] * 100:6.1f} cm")
    print(ascii_track(
        bed.floorplan,
        [(".", truth.positions[::20]), ("o", outcome.estimated[::20])],
    ))

    # --- Deployment 2: RIM + gyro + particle filter -------------------
    waypoints = np.array(
        [(6.0, 13.0), (20.0, 13.0), (20.0, 16.0), (32.0, 16.0)]
    )
    truth = polyline_trajectory(waypoints, speed=1.0, face_motion=True)
    fused = track_with_imu_fusion(
        bed.sampler,
        linear_array(3),
        truth,
        floorplan=bed.floorplan,
        rim=Rim(RimConfig(max_lag=60)),
        rng=np.random.default_rng(7),
    )
    print(f"\n[RIM + gyro + PF] trace length {truth.total_distance:.1f} m")
    print(f"  dead-reckoned median error : "
          f"{np.median(fused.errors_dead_reckoned) * 100:6.1f} cm")
    print(f"  particle-filter median err : "
          f"{np.median(fused.errors_filtered) * 100:6.1f} cm")


if __name__ == "__main__":
    main()
