"""Unit tests for RimConfig validation."""

import pytest

from repro.core.config import RimConfig


class TestRimConfig:
    def test_defaults_valid(self):
        cfg = RimConfig()
        assert cfg.max_lag == 100
        assert cfg.virtual_window == 31
        assert cfg.sanitize

    def test_max_lag_bound(self):
        with pytest.raises(ValueError):
            RimConfig(max_lag=1)

    def test_virtual_window_bound(self):
        with pytest.raises(ValueError):
            RimConfig(virtual_window=0)

    def test_movement_threshold_bounds(self):
        with pytest.raises(ValueError):
            RimConfig(movement_threshold=0.0)
        with pytest.raises(ValueError):
            RimConfig(movement_threshold=1.0)

    def test_transition_weight_must_be_negative(self):
        with pytest.raises(ValueError):
            RimConfig(transition_weight=0.0)

    def test_min_speed_lag_bound(self):
        with pytest.raises(ValueError):
            RimConfig(min_speed_lag=0.5)

    def test_pre_detect_stride_bound(self):
        with pytest.raises(ValueError):
            RimConfig(pre_detect_stride=0)

    def test_custom_values_kept(self):
        cfg = RimConfig(max_lag=42, virtual_window=11, sanitize=False)
        assert cfg.max_lag == 42
        assert cfg.virtual_window == 11
        assert not cfg.sanitize

    def test_interpolation_max_gap_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            RimConfig(interpolation_max_gap=-1)
        assert RimConfig(interpolation_max_gap=0).interpolation_max_gap == 0

    def test_smoothing_windows_must_be_positive(self):
        with pytest.raises(ValueError):
            RimConfig(quality_smoothing=0)
        with pytest.raises(ValueError):
            RimConfig(speed_smoothing=0)
        with pytest.raises(ValueError):
            RimConfig(movement_min_run=0)
        with pytest.raises(ValueError):
            RimConfig(pre_detect_keep=0)

    def test_guard_policy_validated(self):
        for policy in ("off", "raise", "drop", "repair"):
            assert RimConfig(guard_policy=policy).guard_policy == policy
        with pytest.raises(ValueError, match="guard_policy"):
            RimConfig(guard_policy="bogus")

    def test_guard_liveness_and_drift_bounds(self):
        with pytest.raises(ValueError):
            RimConfig(guard_min_liveness=-0.1)
        with pytest.raises(ValueError):
            RimConfig(guard_min_liveness=1.5)
        with pytest.raises(ValueError):
            RimConfig(guard_max_drift=0.0)
        with pytest.raises(ValueError):
            RimConfig(health_min_pairs=-1)
