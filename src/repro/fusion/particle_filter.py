"""Floorplan-constrained particle filter (§6.3.3, Fig. 21).

The paper fuses RIM's distance estimates with gyro heading and corrects the
residual drift with a particle filter over the digital floorplan: "The PF
will discard every particle that hits a wall and let others survive."  This
module implements exactly that: particles dead-reckon with per-particle
noise on step length and heading, wall-crossing particles die, survivors
are resampled when the effective sample size collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.env.floorplan import Floorplan


@dataclass
class ParticleFilterConfig:
    """Particle filter tuning.

    Attributes:
        n_particles: Particle count.
        step_noise: Relative std-dev of per-step distance noise.
        heading_noise: Std-dev of per-step heading noise, radians.  Must be
            generous enough to cover gyro bias: when the nominal heading
            points into a wall, only particles whose sampled heading runs
            wall-parallel survive — which is precisely how the filter
            absorbs heading drift instead of freezing against the wall.
        resample_threshold: Resample when ESS falls below this fraction.
        min_survivors: If fewer particles survive a step, the dead ones are
            reinitialized around the survivors instead of being dropped.
    """

    n_particles: int = 400
    step_noise: float = 0.1
    heading_noise: float = np.deg2rad(5.0)
    resample_threshold: float = 0.5
    min_survivors: int = 10


class ParticleFilter:
    """Sequential Monte-Carlo tracker constrained by a floorplan."""

    def __init__(
        self,
        floorplan: Floorplan,
        start,
        config: Optional[ParticleFilterConfig] = None,
        rng: Optional[np.random.Generator] = None,
        initial_spread: float = 0.3,
    ):
        self.floorplan = floorplan
        self.config = config or ParticleFilterConfig()
        self.rng = rng or np.random.default_rng()
        start = np.asarray(start, dtype=np.float64)
        n = self.config.n_particles
        self.particles = start[None, :] + self.rng.normal(0.0, initial_spread, (n, 2))
        self.weights = np.full(n, 1.0 / n)

    def step(self, distance: float, heading: float) -> np.ndarray:
        """Advance the filter by one motion increment.

        Args:
            distance: Step length (from RIM), meters.
            heading: Step heading (e.g. gyro-integrated), radians.

        Returns:
            The current state estimate (weighted particle mean).
        """
        cfg = self.config
        n = cfg.n_particles
        noisy_dist = distance * (1.0 + self.rng.normal(0.0, cfg.step_noise, n))
        noisy_head = heading + self.rng.normal(0.0, cfg.heading_noise, n)
        steps = np.stack(
            [noisy_dist * np.cos(noisy_head), noisy_dist * np.sin(noisy_head)], axis=1
        )
        proposed = self.particles + steps

        blocked = self.floorplan.segment_blocked(self.particles, proposed)
        outside = ~self.floorplan.contains(proposed)
        dead = blocked | outside
        survivors = ~dead

        if survivors.any():
            moved = np.where(dead[:, None], self.particles, proposed)
            if survivors.sum() >= cfg.min_survivors:
                self.weights = np.where(dead, 0.0, self.weights)
            else:
                # Degenerate geometry (e.g. squeezing through a door): keep
                # the filter alive by respawning the dead on survivors —
                # never by letting them through the wall.
                donors = self.rng.choice(
                    np.nonzero(survivors)[0], size=int(dead.sum())
                )
                moved[dead] = self._jitter(moved[donors], 0.05)
                self.weights = np.full(n, 1.0 / n)
            self.particles = moved
        # With no survivor at all the cloud stays put (hugging the wall).

        total = self.weights.sum()
        if total <= 0:
            self.weights = np.full(n, 1.0 / n)
        else:
            self.weights = self.weights / total

        ess = 1.0 / np.sum(self.weights**2)
        if ess < cfg.resample_threshold * n:
            self._resample()
        return self.estimate()

    def _resample(self) -> None:
        n = self.config.n_particles
        positions = (self.rng.uniform() + np.arange(n)) / n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self.particles = self._jitter(self.particles[idx], 0.02)
        self.weights = np.full(n, 1.0 / n)

    def _jitter(self, origins: np.ndarray, sigma: float) -> np.ndarray:
        """Diversity noise that cannot tunnel particles through walls."""
        proposed = origins + self.rng.normal(0.0, sigma, origins.shape)
        bad = self.floorplan.segment_blocked(origins, proposed) | ~self.floorplan.contains(
            proposed
        )
        return np.where(bad[:, None], origins, proposed)

    def estimate(self) -> np.ndarray:
        """Weighted mean of the particle cloud."""
        return (self.particles * self.weights[:, None]).sum(axis=0)


def run_particle_filter(
    floorplan: Floorplan,
    start,
    step_distances: np.ndarray,
    step_headings: np.ndarray,
    config: Optional[ParticleFilterConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Track a whole trace through the particle filter.

    Args:
        floorplan: Wall constraints.
        start: Known initial position (§6.3.3 provides it).
        step_distances: (N,) per-step distances.
        step_headings: (N,) per-step headings, radians.

    Returns:
        (N + 1, 2) estimated positions including the start.
    """
    step_distances = np.asarray(step_distances, dtype=np.float64)
    step_headings = np.asarray(step_headings, dtype=np.float64)
    if step_distances.shape != step_headings.shape:
        raise ValueError("distances and headings must have equal length")
    pf = ParticleFilter(floorplan, start, config=config, rng=rng)
    track = [np.asarray(start, dtype=np.float64)]
    for dist, head in zip(step_distances, step_headings):
        track.append(pf.step(float(dist), float(head)))
    return np.asarray(track)
