"""OFDM subcarrier grids for 802.11n channels.

The channel simulator synthesizes Channel Frequency Responses (CFRs) on the
actual tone grid of an 802.11n channel, so that phase slopes induced by
timing offsets behave exactly as they do on commodity hardware.

A 40 MHz 802.11n channel uses a 128-point FFT with occupied subcarriers
-58..-2 and +2..+58 (114 usable tones); a 20 MHz channel uses a 64-point FFT
with subcarriers -28..-1 and +1..+28 (56 usable tones).  The Intel 5300 NIC
used by the paper reports a grouped subset of 30 tones; ``SubcarrierGrid``
supports such decimation via :meth:`SubcarrierGrid.grouped`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.constants import CARRIER_FREQUENCY

_OCCUPIED_RANGES = {
    20e6: (1, 28),
    40e6: (2, 58),
}

_FFT_SIZES = {
    20e6: 64,
    40e6: 128,
}


@dataclass(frozen=True)
class SubcarrierGrid:
    """The set of occupied OFDM tones of a WiFi channel.

    Attributes:
        carrier_frequency: Center frequency of the channel in Hz.
        bandwidth: Channel bandwidth in Hz.
        indices: Signed subcarrier indices (e.g. -58..-2, 2..58).
        spacing: Subcarrier spacing in Hz.
    """

    carrier_frequency: float
    bandwidth: float
    indices: tuple
    spacing: float

    @property
    def n_subcarriers(self) -> int:
        """Number of occupied tones."""
        return len(self.indices)

    @property
    def frequencies(self) -> np.ndarray:
        """Absolute RF frequency of every tone, in Hz."""
        return self.carrier_frequency + self.spacing * np.asarray(self.indices, dtype=np.float64)

    @property
    def baseband_frequencies(self) -> np.ndarray:
        """Tone frequencies relative to the carrier, in Hz."""
        return self.spacing * np.asarray(self.indices, dtype=np.float64)

    @property
    def index_array(self) -> np.ndarray:
        """Signed tone indices as a float array (useful for phase fitting)."""
        return np.asarray(self.indices, dtype=np.float64)

    def grouped(self, n_groups: int) -> "SubcarrierGrid":
        """Return a decimated grid of ``n_groups`` evenly-spread tones.

        Emulates NICs (e.g. Intel 5300) that report grouped subcarriers.
        """
        if not 1 <= n_groups <= self.n_subcarriers:
            raise ValueError(
                f"n_groups must be in [1, {self.n_subcarriers}], got {n_groups}"
            )
        picks = np.linspace(0, self.n_subcarriers - 1, n_groups).round().astype(int)
        picks = np.unique(picks)
        indices = tuple(self.indices[i] for i in picks)
        return SubcarrierGrid(
            carrier_frequency=self.carrier_frequency,
            bandwidth=self.bandwidth,
            indices=indices,
            spacing=self.spacing,
        )


def make_grid(
    carrier_frequency: float = CARRIER_FREQUENCY,
    bandwidth: float = 40e6,
) -> SubcarrierGrid:
    """Build the occupied-tone grid of an 802.11n channel.

    Args:
        carrier_frequency: Channel center frequency in Hz.
        bandwidth: 20e6 or 40e6.

    Returns:
        The corresponding :class:`SubcarrierGrid`.

    Raises:
        ValueError: If the bandwidth is not a supported 802.11n width.
    """
    if bandwidth not in _OCCUPIED_RANGES:
        supported = sorted(_OCCUPIED_RANGES)
        raise ValueError(f"unsupported bandwidth {bandwidth}; supported: {supported}")
    lo, hi = _OCCUPIED_RANGES[bandwidth]
    fft_size = _FFT_SIZES[bandwidth]
    spacing = bandwidth / fft_size
    negative = range(-hi, -lo + 1)
    positive = range(lo, hi + 1)
    indices = tuple(negative) + tuple(positive)
    return SubcarrierGrid(
        carrier_frequency=carrier_frequency,
        bandwidth=bandwidth,
        indices=indices,
        spacing=spacing,
    )
