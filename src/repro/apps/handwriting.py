"""Desk handwriting reconstruction (§6.3.1, Fig. 18).

The array is moved like a pen; RIM reconstructs the strokes from CSI alone.
Evaluation follows the paper: because estimated and true trajectories lack
tight time sync on real hardware, the error metric is the minimum
projection distance from each estimated location to the ground-truth
stroke polyline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.sampler import CsiSampler
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.eval.metrics import percentile_summary, trajectory_projection_errors
from repro.motionsim.handwriting import handwriting_trajectory, letter_waypoints


@dataclass
class HandwritingResult:
    """One reconstructed letter.

    Attributes:
        letter: The written letter.
        estimated: (T, 2) reconstructed pen positions.
        truth: (M, 2) ground-truth stroke waypoints.
        errors: (T,) per-point projection errors, meters.
        mean_error: Mean projection error, meters (the Fig. 18 statistic).
    """

    letter: str
    estimated: np.ndarray
    truth: np.ndarray
    errors: np.ndarray
    mean_error: float


def write_letter(
    sampler: CsiSampler,
    array,
    letter: str,
    origin,
    height: float = 0.2,
    pen_speed: float = 0.25,
    sampling_rate: float = 200.0,
    rim: Optional[Rim] = None,
) -> HandwritingResult:
    """Simulate writing a letter and reconstruct it with RIM.

    Args:
        sampler: CSI sampler bound to a channel and AP.
        array: The antenna "pen" (the paper uses the hexagonal array).
        letter: Letter to write.
        origin: Lower-left corner of the letter box.
        height: Letter height, meters.
        pen_speed: Stroke speed, m/s.
        sampling_rate: CSI packet rate.
        rim: Estimator override (a handwriting-tuned config is used by
            default: slow strokes need a larger lag window).

    Returns:
        :class:`HandwritingResult` with the paper's error metric.
    """
    trajectory = handwriting_trajectory(
        letter,
        origin=origin,
        height=height,
        pen_speed=pen_speed,
        sampling_rate=sampling_rate,
    )
    trace = sampler.sample(trajectory, array)
    if rim is None:
        rim = Rim(handwriting_config(pen_speed, sampling_rate))
    result = rim.process(trace)
    estimated = result.trajectory(start=trajectory.positions[0])
    truth = letter_waypoints(letter, height=height, origin=origin)
    errors = trajectory_projection_errors(estimated, truth)
    return HandwritingResult(
        letter=letter,
        estimated=estimated,
        truth=truth,
        errors=errors,
        mean_error=float(errors.mean()),
    )


def handwriting_config(pen_speed: float, sampling_rate: float) -> RimConfig:
    """A RimConfig sized for slow pen strokes.

    The alignment delay at pen speed v is Δd·f_s/v samples; the lag window
    must exceed it with margin (§3.2).  Curved strokes change direction
    continuously, so the virtual-antenna window and the group-selection
    smoothing are shortened (a long window smears across the turn) and the
    selection hysteresis is relaxed so the aligned pair can hand over
    mid-curve.
    """
    from repro.channel.constants import HALF_WAVELENGTH

    expected_lag = HALF_WAVELENGTH * sampling_rate / max(0.05, pen_speed)
    max_lag = int(min(240, max(60, 2.0 * expected_lag)))
    return RimConfig(
        max_lag=max_lag,
        virtual_window=15,
        quality_smoothing=15,
        selection_hysteresis=0.01,
        speed_smoothing=9,
    )


def summarize(results) -> dict:
    """Aggregate mean/median errors across letters (Fig. 18 reporting)."""
    all_errors = np.concatenate([r.errors for r in results]) if results else np.array([])
    summary = percentile_summary(all_errors)
    summary["per_letter_mean"] = {r.letter: r.mean_error for r in results}
    return summary
