"""Unit tests for the silent NaN-tolerant reductions in repro.nanops."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.nanops import nanmax, nanmean, nanmedian

ALL_FUNCS = [nanmean, nanmedian, nanmax]
NUMPY_EQUIV = {nanmean: np.nanmean, nanmedian: np.nanmedian, nanmax: np.nanmax}


@pytest.mark.parametrize("func", ALL_FUNCS)
def test_matches_numpy_on_finite_input(func):
    rng = np.random.default_rng(0)
    values = rng.normal(size=(4, 5))
    np.testing.assert_allclose(func(values), NUMPY_EQUIV[func](values))
    np.testing.assert_allclose(func(values, axis=0), NUMPY_EQUIV[func](values, axis=0))
    np.testing.assert_allclose(func(values, axis=1), NUMPY_EQUIV[func](values, axis=1))


@pytest.mark.parametrize("func", ALL_FUNCS)
def test_ignores_scattered_nans(func):
    values = np.array([[1.0, np.nan, 3.0], [np.nan, 2.0, 4.0]])
    out = func(values, axis=0)
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, NUMPY_EQUIV[func](values, axis=0))


@pytest.mark.parametrize("func", ALL_FUNCS)
def test_all_nan_input_returns_nan_silently(func):
    values = np.full((3, 4), np.nan)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any RuntimeWarning becomes a failure
        assert np.isnan(func(values))
        assert np.isnan(func(values, axis=0)).all()
        assert np.isnan(func(values, axis=1)).all()


@pytest.mark.parametrize("func", ALL_FUNCS)
def test_all_nan_slice_along_axis_is_silent(func):
    values = np.array([[1.0, np.nan], [2.0, np.nan]])
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        out = func(values, axis=0)
    assert np.isfinite(out[0])
    assert np.isnan(out[1])


@pytest.mark.parametrize("func", ALL_FUNCS)
def test_does_not_suppress_warnings_for_caller(func):
    """The warning filter must not leak outside the wrapper."""
    func(np.full(3, np.nan))
    with pytest.warns(RuntimeWarning):
        warnings.warn("still visible", RuntimeWarning)


def test_nanmax_all_nan_no_value_error():
    # Plain np.nanmax warns (not raises) on all-NaN; the wrapper must too.
    assert np.isnan(nanmax(np.array([np.nan, np.nan])))
