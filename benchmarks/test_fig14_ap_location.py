"""Bench: Fig. 14 — distance accuracy versus AP placement.

Paper: <10 cm median for every AP site, LOS or through multiple walls.
"""

from repro.eval.experiments import run_fig14_ap_location
from repro.eval.report import print_report


def test_fig14_ap_location(benchmark, quick):
    result = benchmark.pedantic(
        run_fig14_ap_location, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 14 — impact of AP location", result)
    medians = result["measured"]["median_error_cm_by_site"]
    # Shape: no AP placement collapses the system; all sites stay at
    # centimeter-scale medians.
    assert all(v < 25.0 for v in medians.values())
