"""Integration tests for RIM + IMU fusion (§6.3.3)."""

import numpy as np
import pytest

from repro.apps.tracking import track_pure_rim, track_with_imu_fusion
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.env.floorplan import empty_floorplan
from repro.fusion.integration import fuse_rim_gyro
from repro.imu.sensors import ImuNoiseModel, ImuSimulator
from repro.motionsim.profiles import line_trajectory, polyline_trajectory


@pytest.fixture(scope="module")
def rim():
    return Rim(RimConfig(max_lag=50))


class TestFuseRimGyro:
    def test_straight_line_fusion(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        rim_result = rim.process(trace)
        imu = ImuSimulator(rng=np.random.default_rng(0)).simulate(traj)
        fused = fuse_rim_gyro(rim_result, imu, initial_heading=0.0, start=(0.0, 0.0))
        assert fused.positions.shape[1] == 2
        # End point ~1 m east.
        assert fused.positions[-1][0] == pytest.approx(1.0, abs=0.2)
        assert abs(fused.positions[-1][1]) < 0.2

    def test_step_distances_sum_to_total(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        rim_result = rim.process(trace)
        imu = ImuSimulator(rng=np.random.default_rng(1)).simulate(traj)
        fused = fuse_rim_gyro(rim_result, imu, initial_heading=0.0)
        assert fused.step_distances.sum() == pytest.approx(
            rim_result.total_distance, rel=0.05
        )

    def test_short_trace_rejected(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        rim_result = rim.process(trace)
        rim_result.motion.times = rim_result.motion.times[:1]
        imu = ImuSimulator(rng=np.random.default_rng(2)).simulate(traj)
        with pytest.raises(ValueError):
            fuse_rim_gyro(rim_result, imu, initial_heading=0.0)


class TestTrackingApps:
    def test_pure_rim_outcome_fields(self, fast_sampler, hexagon):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.6)
        outcome = track_pure_rim(
            fast_sampler, hexagon, traj, rim=Rim(RimConfig(max_lag=50))
        )
        assert outcome.estimated.shape == (traj.n_samples, 2)
        assert outcome.errors.shape == (traj.n_samples,)
        assert outcome.summary["median"] < 0.5

    def test_fusion_with_turn(self, fast_sampler, three_antenna, rim):
        wp = np.array([(10.0, 8.0), (11.0, 8.0), (11.0, 9.0)])
        traj = polyline_trajectory(wp, 0.5, face_motion=True)
        outcome = track_with_imu_fusion(
            fast_sampler,
            three_antenna,
            traj,
            floorplan=None,
            rim=rim,
            rng=np.random.default_rng(3),
        )
        assert outcome.filtered is None
        assert outcome.errors_filtered is None
        assert np.median(outcome.errors_dead_reckoned) < 0.6

    def test_fusion_with_particle_filter(self, fast_sampler, three_antenna, rim):
        wp = np.array([(10.0, 8.0), (12.0, 8.0)])
        traj = polyline_trajectory(wp, 0.5, face_motion=True)
        outcome = track_with_imu_fusion(
            fast_sampler,
            three_antenna,
            traj,
            floorplan=empty_floorplan(width=20, height=15),
            rim=rim,
            rng=np.random.default_rng(4),
        )
        assert outcome.filtered is not None
        assert outcome.filtered.shape == outcome.dead_reckoned.shape
        assert np.median(outcome.errors_filtered) < 0.8

    def test_gyro_drift_hurts_long_fused_tracks(self, fast_sampler, three_antenna, rim):
        """The Fig. 21 premise: distance is accurate, heading drifts."""
        wp = np.array([(6.0, 8.0), (14.0, 8.0)])
        traj = polyline_trajectory(wp, 1.0, face_motion=True)
        drifty = ImuSimulator(
            ImuNoiseModel(gyro_initial_bias=np.deg2rad(5.0)),
            rng=np.random.default_rng(5),
        )
        outcome = track_with_imu_fusion(
            fast_sampler,
            three_antenna,
            traj,
            floorplan=None,
            rim=rim,
            imu_simulator=drifty,
            rng=np.random.default_rng(5),
        )
        # Distance along the path is fine...
        travel = np.linalg.norm(np.diff(outcome.dead_reckoned, axis=0), axis=1).sum()
        assert travel == pytest.approx(8.0, rel=0.15)
        # ...but the endpoint drifts laterally from the bias.
        lateral = abs(outcome.dead_reckoned[-1][1] - 8.0)
        assert lateral > 0.2
