#!/usr/bin/env python
"""RIM versus MEMS inertial sensors on the paper's three measurements.

Reproduces the paper's comparisons in one script:

* moving distance  — RIM vs double-integrated accelerometer (§6.2.1);
* movement detection on a stop-and-go trace — RIM vs Acc vs Gyro (Fig. 7);
* rotating angle   — RIM vs integrated gyroscope (Fig. 13).

Run:  python examples/imu_comparison.py
"""

import numpy as np

from repro import Rim, RimConfig, hexagonal_array, linear_array
from repro.core.movement import detect_movement, self_trrs_indicator
from repro.core.sanitize import sanitize_trace
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.imu.deadreckoning import (
    accelerometer_movement_indicator,
    gyro_rotation_angle,
    gyroscope_movement_indicator,
    integrate_imu,
)
from repro.imu.sensors import ImuSimulator
from repro.motionsim.profiles import (
    line_trajectory,
    rotation_trajectory,
    stop_and_go_trajectory,
)


def main():
    bed = make_testbed(seed=11)
    rng = np.random.default_rng(11)

    # --- 1. Moving distance: RIM vs accelerometer ---------------------
    truth = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 1.0, 10.0)
    trace = bed.sampler.sample(truth, linear_array(3))
    rim_result = Rim(RimConfig(max_lag=60)).process(trace)
    rim_err = abs(rim_result.total_distance - truth.total_distance)

    imu = ImuSimulator(rng=rng).simulate(truth)
    dead = integrate_imu(imu, initial_heading=0.0, initial_velocity=(1.0, 0.0))
    acc_err = abs(dead.distance[-1] - truth.total_distance)

    print("1) moving distance over a 10 m push at 1 m/s")
    print(f"   RIM error           : {rim_err * 100:8.1f} cm")
    print(f"   accelerometer error : {acc_err * 100:8.1f} cm "
          "(double integration drifts)")

    # --- 2. Movement detection on stop-and-go (Fig. 7) ----------------
    truth = stop_and_go_trajectory(
        MEASUREMENT_SPOTS[1], 0.0, 0.6, [2.0, 1.5, 2.0], [1.0, 1.0]
    )
    trace = bed.sampler.sample(truth, linear_array(3))
    data = sanitize_trace(trace.data)
    indicator = self_trrs_indicator(data[:, 0], lag_samples=20, virtual_window=7)
    rim_mask = detect_movement(indicator, threshold=0.95).moving
    truth_mask = truth.speeds() > 0.05

    imu = ImuSimulator(rng=rng).simulate(truth)
    acc_ind = accelerometer_movement_indicator(imu)
    gyr_ind = gyroscope_movement_indicator(imu)

    def best_acc(ind):
        return max(
            ((ind > np.quantile(ind, q)) == truth_mask).mean()
            for q in np.linspace(0.05, 0.95, 19)
        )

    print("\n2) movement detection on a stop-and-go trace (2 transient stops)")
    print(f"   RIM accuracy           : {100 * (rim_mask == truth_mask).mean():6.1f} %")
    print(f"   accelerometer (oracle) : {100 * best_acc(acc_ind):6.1f} %")
    print(f"   gyroscope (oracle)     : {100 * best_acc(gyr_ind):6.1f} %")

    # --- 3. Rotating angle: RIM vs gyroscope (Fig. 13) -----------------
    truth = rotation_trajectory(MEASUREMENT_SPOTS[3], 180.0, angular_speed_deg=120.0)
    trace = bed.sampler.sample(truth, hexagonal_array())
    rim_result = Rim(RimConfig(max_lag=150)).process(trace)
    imu = ImuSimulator(rng=rng).simulate(truth)

    print("\n3) in-place rotation by 180 deg")
    print(f"   RIM estimate  : {np.rad2deg(rim_result.total_rotation):8.1f} deg")
    print(f"   gyro estimate : {np.rad2deg(gyro_rotation_angle(imu)):8.1f} deg "
          "(gyro wins this one, as in the paper)")


if __name__ == "__main__":
    main()
