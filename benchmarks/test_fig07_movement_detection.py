"""Bench: Fig. 7 — movement detection, RIM vs accelerometer vs gyro."""

from repro.eval.experiments import run_fig7_movement_detection
from repro.eval.report import print_report


def test_fig7_movement_detection(benchmark, quick):
    result = benchmark.pedantic(
        run_fig7_movement_detection, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 7 — movement detection", result)
    m = result["measured"]
    # Shape: RIM detects the transient stops both inertial sensors miss.
    assert m["rim_accuracy"] > 0.85
    assert m["rim_accuracy"] > m["accelerometer_accuracy"]
    assert m["rim_accuracy"] > m["gyroscope_accuracy"]
